// Package cluster advances a fleet of independently-seeded sim.Worlds
// under one shared virtual clock, with pluggable request routing and
// admission control in front and cross-instance SLO aggregation behind.
//
// The paper studies one workstation's thread population; the ROADMAP
// north star is a production-scale service, and this package is the
// step between them: each instance is a full single-machine simulation
// (a W1 echo server, or a Cedar/GVX desktop with routed sessions on
// top), and the cluster is the part of the system the paper never had —
// the load balancer and the admission valve.
//
// Determinism is the design constraint everything else bends around.
// The fleet's arrival process, user identities, service demands,
// admission decisions, and routing choices are all drawn on the
// cluster's own derived streams and pure state, never from any world's
// live RNG; instances interact with the driver only at advance
// barriers; and aggregation folds per-instance recorders in instance-ID
// order. The result: the same Spec produces byte-identical summaries
// whether instances advance serially or on GOMAXPROCS shards.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
	wspec "repro/internal/workload/spec"
)

// Spec is one cluster run's complete configuration. The zero value is
// not runnable; fill at least Instances, Sessions, Requests and Rate.
type Spec struct {
	// Preset names the per-instance world recipe (workload.Presets):
	// "w1-echo", "cedar", or "gvx". Empty selects w1-echo.
	Preset string
	// Instances is the fleet size.
	Instances int
	// Sessions is the session-thread pool size per instance.
	Sessions int
	// Router selects the routing policy: "rr", "least-loaded",
	// "affinity". Empty selects rr.
	Router string
	// Admission selects the admission policy: "always", "token-bucket".
	// Empty selects always.
	Admission string
	// Seed seeds the cluster's arrival/identity/demand streams and,
	// offset per instance, each world.
	Seed int64
	// Requests is the total offered load (pre-admission).
	Requests int64
	// Rate is the aggregate Poisson arrival rate, requests per virtual
	// second across the whole fleet.
	Rate float64
	// Service is the base CPU demand per request. Zero selects 5us.
	Service vclock.Duration
	// Users is the distinct user population driving affinity routing
	// and hot-user skew. Zero selects Sessions.
	Users int
	// HotUsers and HotFraction impose skew: HotFraction of arrivals
	// come from the first HotUsers users. Zero HotUsers disables skew.
	HotUsers    int
	HotFraction float64
	// HeavyFraction and HeavyFactor impose a heavy service tail:
	// HeavyFraction of admitted requests cost Service*HeavyFactor.
	HeavyFraction float64
	HeavyFactor   int
	// TokenRate and TokenBurst parameterize token-bucket admission
	// (tokens per virtual second, bucket capacity).
	TokenRate  float64
	TokenBurst float64
	// Start delays the first arrival so freshly spawned populations can
	// park; zero selects a bound derived from the population size.
	Start vclock.Duration
	// Drain is how long past the last arrival the fleet runs to let
	// queues empty. Zero selects 60 virtual seconds.
	Drain vclock.Duration
	// Shards is the advance parallelism: worlds are dealt round-robin
	// onto this many goroutines at each barrier. Zero or one advances
	// serially. Output is byte-identical at any shard count.
	Shards int
	// Hooks carries observability seams (probe, profiler attachment)
	// into every instance world. Observe-only hooks never change the
	// summary; sim.Probe and profile.Set are safe under sharded advance.
	Hooks sim.Hooks

	// --- Fault injection and resilience (all optional). Setting any of
	// these switches Run onto the tracked-request resilient path; see
	// resilience.go. ---

	// Faults is the cluster-scoped fault plan; only instance-scoped
	// kinds (crash_instance / stall_instance / degrade_instance) are
	// accepted. Fault times are offsets from virtual time zero.
	Faults *fault.Plan
	// FaultSeed seeds AnyInstance victim picks during fault compilation.
	// Zero derives a stream from Seed.
	FaultSeed int64
	// ProbeEvery enables the health monitor: every instance is probed at
	// this period, ejected from routing after FailAfter consecutive
	// failures and re-admitted after RecoverAfter consecutive successes.
	// Zero disables health-aware routing entirely.
	ProbeEvery   vclock.Duration
	FailAfter    int // consecutive probe failures to eject; zero selects 3
	RecoverAfter int // consecutive probe successes to re-admit; zero selects 2
	// Timeout is the client's per-attempt deadline. Zero disables.
	Timeout vclock.Duration
	// Retries caps client retries per request beyond the first attempt,
	// with capped exponential backoff (RetryBackoff doubling up to
	// RetryBackoffCap; defaults 1ms and 8x).
	Retries         int
	RetryBackoff    vclock.Duration
	RetryBackoffCap vclock.Duration
	// RetryBudget caps fleet-wide retries at this fraction of offered
	// arrivals so far — the retry-storm valve. Zero leaves retries
	// unmetered.
	RetryBudget float64
	// HedgeAfter enables tail-latency hedging: an unanswered request is
	// duplicated to a second instance after max(HedgeAfter, observed
	// p99); first response wins, the loser is cancelled. Zero disables.
	HedgeAfter vclock.Duration
	// BreakerAfter enables a per-instance circuit breaker: BreakerAfter
	// consecutive failures open it for BreakerOpenFor (default 25ms),
	// then half-open admits one trial. Zero disables.
	BreakerAfter   int
	BreakerOpenFor vclock.Duration
	// DegradedOver classifies successes slower than this as degraded
	// rather than goodput even when served by the first attempt. Zero
	// means only retried/hedged successes count as degraded.
	DegradedOver vclock.Duration

	// Record, when non-nil, accumulates the fleet's admitted arrivals
	// (virtual instant, user identity, drawn service demand) into the
	// trace in arrival order. The driver loop is serial even under
	// sharded advance, so the artifact is byte-identical across Shards.
	// Fire-and-forget path only.
	Record *wspec.Trace
	// Replay, when non-nil, drives the fleet from a recorded trace
	// instead of the spec's streams: the gap, user and service draws
	// are skipped and admission is bypassed (the trace holds only
	// admitted arrivals). Routing still runs live, so the same offered
	// load can be replayed under a different router. Fire-and-forget
	// path only.
	Replay *wspec.Trace
}

// resilient reports whether the spec asks for the tracked-request run
// path. A non-nil (even empty) fault plan qualifies: the caller asked
// for fault semantics and gets the full accounting with it.
func (s Spec) resilient() bool {
	return s.Faults != nil || s.ProbeEvery > 0 || s.Timeout > 0 || s.Retries > 0 ||
		s.HedgeAfter > 0 || s.BreakerAfter > 0 || s.DegradedOver > 0
}

// faultSeed resolves the victim-pick stream for AnyInstance rules.
func (s Spec) faultSeed() int64 {
	if s.FaultSeed != 0 {
		return s.FaultSeed
	}
	return s.Seed + 0xfa017
}

// withDefaults returns the spec with zero knobs resolved.
func (s Spec) withDefaults() Spec {
	if s.Preset == "" {
		s.Preset = "w1-echo"
	}
	if s.Router == "" {
		s.Router = RouteRoundRobin
	}
	if s.Admission == "" {
		s.Admission = AdmitAlways
	}
	if s.Service <= 0 {
		s.Service = 5 * vclock.Microsecond
	}
	if s.Users <= 0 {
		s.Users = s.Sessions
	}
	if s.HeavyFactor < 1 {
		s.HeavyFactor = 1
	}
	if s.Drain <= 0 {
		s.Drain = 60 * vclock.Second
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.ProbeEvery > 0 {
		if s.FailAfter <= 0 {
			s.FailAfter = 3
		}
		if s.RecoverAfter <= 0 {
			s.RecoverAfter = 2
		}
	}
	if s.Retries > 0 {
		if s.RetryBackoff <= 0 {
			s.RetryBackoff = vclock.Millisecond
		}
		if s.RetryBackoffCap <= 0 {
			s.RetryBackoffCap = 8 * s.RetryBackoff
		}
	}
	if s.BreakerAfter > 0 && s.BreakerOpenFor <= 0 {
		s.BreakerOpenFor = 25 * vclock.Millisecond
	}
	return s
}

func (s Spec) validate() error {
	if s.Instances < 1 {
		return fmt.Errorf("cluster: Instances must be >= 1 (got %d)", s.Instances)
	}
	if s.Sessions < 1 {
		return fmt.Errorf("cluster: Sessions must be >= 1 (got %d)", s.Sessions)
	}
	if s.Requests < 1 {
		return fmt.Errorf("cluster: Requests must be >= 1 (got %d)", s.Requests)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("cluster: Rate must be > 0 (got %v)", s.Rate)
	}
	if s.HotUsers < 0 || s.HotUsers >= s.Users && s.HotUsers > 0 {
		return fmt.Errorf("cluster: HotUsers must be in [0, Users) (got %d of %d)", s.HotUsers, s.Users)
	}
	if s.HotFraction < 0 || s.HotFraction > 1 {
		return fmt.Errorf("cluster: HotFraction must be in [0,1] (got %v)", s.HotFraction)
	}
	if s.HeavyFraction < 0 || s.HeavyFraction > 1 {
		return fmt.Errorf("cluster: HeavyFraction must be in [0,1] (got %v)", s.HeavyFraction)
	}
	for _, d := range []struct {
		name string
		v    vclock.Duration
	}{
		{"ProbeEvery", s.ProbeEvery}, {"Timeout", s.Timeout},
		{"HedgeAfter", s.HedgeAfter}, {"BreakerOpenFor", s.BreakerOpenFor},
		{"DegradedOver", s.DegradedOver},
	} {
		if d.v < 0 {
			return fmt.Errorf("cluster: %s must be >= 0 (got %v)", d.name, d.v)
		}
	}
	if s.Retries < 0 {
		return fmt.Errorf("cluster: Retries must be >= 0 (got %d)", s.Retries)
	}
	if s.RetryBudget < 0 {
		return fmt.Errorf("cluster: RetryBudget must be >= 0 (got %v)", s.RetryBudget)
	}
	if s.BreakerAfter < 0 {
		return fmt.Errorf("cluster: BreakerAfter must be >= 0 (got %d)", s.BreakerAfter)
	}
	if (s.Record != nil || s.Replay != nil) && s.resilient() {
		return fmt.Errorf("cluster: Record/Replay are supported on the fire-and-forget path only")
	}
	return nil
}

// instance is one fleet member: a world, its routed-request server, and
// the routing ledger.
type instance struct {
	id     int
	w      *sim.World
	srv    *workload.Server
	routed int64
}

// Cluster is a built fleet, ready to Run once.
type Cluster struct {
	spec   Spec
	preset workload.Preset
	insts  []*instance
	route  router
	admit  admitter
	faults *instanceFaults // compiled fault timelines; nil when fault-free
	rng    *rand.Rand      // arrival/identity/demand stream, owned by Run
	ran    bool
}

// New builds the fleet: N worlds seeded Seed+f(id), each populated with
// the preset's background activity plus a session pool drawing names
// from one shared table (static state is per-fleet, not per-world).
func New(spec Spec) (*Cluster, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	preset, err := workload.FindPreset(spec.Preset)
	if err != nil {
		return nil, err
	}
	route, err := newRouter(spec.Router, spec.Instances)
	if err != nil {
		return nil, err
	}
	admit, err := newAdmitter(spec.Admission, spec.TokenRate, spec.TokenBurst)
	if err != nil {
		return nil, err
	}
	c := &Cluster{spec: spec, preset: preset, route: route, admit: admit}
	if spec.Faults != nil {
		// Compile eagerly: a bad plan (thread-scoped kinds, out-of-range
		// instance) fails at New, before any world exists to leak.
		c.faults, err = compileFaults(spec.Faults, spec.Instances, spec.faultSeed())
		if err != nil {
			return nil, err
		}
	}
	names := workload.NewNameTable("echo", spec.Sessions)
	// Each instance world is one "server" workload spec: the preset's
	// background population plus a passive session pool, compiled
	// through the same StartSpec entry point every other workload uses.
	wsp := &wspec.Spec{
		Schema:       wspec.Schema,
		Name:         "cluster-" + spec.Preset,
		Kind:         wspec.KindServer,
		Background:   spec.Preset,
		SystemDaemon: true,
		Cohorts: []wspec.Cohort{
			{Name: "echo", Sessions: spec.Sessions, Priority: "normal"},
		},
	}
	for i := 0; i < spec.Instances; i++ {
		w := sim.NewWorld(sim.Config{
			Seed:         spec.Seed + int64(i+1)*1_000_003,
			SystemDaemon: wsp.SystemDaemon,
			Hooks:        spec.Hooks,
		})
		run, err := workload.StartSpec(w, wsp, workload.SpecOptions{Names: names})
		if err != nil {
			w.Shutdown()
			c.Shutdown()
			return nil, err
		}
		c.insts = append(c.insts, &instance{id: i, w: w, srv: run.Server})
	}
	return c, nil
}

// Shutdown tears down every instance world. Safe to call more than once.
func (c *Cluster) Shutdown() {
	for _, in := range c.insts {
		in.w.Shutdown()
	}
}

// expGap draws one exponential inter-arrival gap (mean 1/rate virtual
// seconds) quantized to the microsecond clock with a 1us floor, so the
// fleet arrival clock is strictly increasing.
func expGap(rng *rand.Rand, rate float64) vclock.Duration {
	d := vclock.Duration(rng.ExpFloat64() / rate * 1e6)
	if d < vclock.Microsecond {
		d = vclock.Microsecond
	}
	return d
}

// drawUser picks the arriving user, honoring the hot-user skew.
func (c *Cluster) drawUser(rng *rand.Rand) int {
	s := c.spec
	if s.HotUsers > 0 && rng.Float64() < s.HotFraction {
		return rng.Intn(s.HotUsers)
	}
	if s.HotUsers > 0 {
		return s.HotUsers + rng.Intn(s.Users-s.HotUsers)
	}
	return rng.Intn(s.Users)
}

// drawService picks the request's CPU demand, honoring the heavy tail.
func (c *Cluster) drawService(rng *rand.Rand) vclock.Duration {
	s := c.spec
	if s.HeavyFraction > 0 && rng.Float64() < s.HeavyFraction {
		return s.Service * vclock.Duration(s.HeavyFactor)
	}
	return s.Service
}

// advanceAll runs every instance world to t, dealing them round-robin
// across the spec's advance shards. Instances are mutually independent
// between barriers — no shared mutable state, each world advanced by
// exactly one goroutine — so the shard count changes wall-clock time
// only, never simulated state.
func (c *Cluster) advanceAll(t vclock.Time) {
	shards := c.spec.Shards
	if shards > len(c.insts) {
		shards = len(c.insts)
	}
	if shards <= 1 {
		for _, in := range c.insts {
			in.w.Run(t)
		}
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(c.insts); i += shards {
				c.insts[i].w.Run(t)
			}
		}(s)
	}
	wg.Wait()
}

// Run drives the fleet through its offered load and returns the
// aggregated summary. It may be called once per Cluster.
//
// Per arrival the order of operations is fixed: clock gap, admission
// decision, user draw, service draw, route. Rejected requests consume
// no user or service draws, so the admitted subsequence's identities
// and demands do not depend on the admission policy. Load-aware routing
// pays a barrier per arrival (every world advanced to the arrival
// instant before the load snapshot); blind routing queues injections
// and lets worlds catch up in bulk at the end — same simulated outcome
// per world, radically different driver cost.
func (c *Cluster) Run() (*Summary, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: Run called twice")
	}
	c.ran = true
	c.rng = rand.New(rand.NewSource(c.spec.Seed))
	if c.spec.resilient() {
		return c.runResilient()
	}
	s := c.spec
	rng := c.rng
	start := s.Start
	if start <= 0 {
		perPark := c.insts[0].w.Config().SwitchCost + 10*vclock.Microsecond
		start = vclock.Duration(s.Sessions)*perPark + 200*vclock.Millisecond
	}
	needLoads := c.route.NeedsLoads()
	loads := make([]int, len(c.insts))
	var offered, admitted, rejected int64
	// dispatch routes and injects one admitted arrival; recording taps
	// here, so the trace holds exactly the admitted subsequence.
	dispatch := func(t vclock.Time, user int, service vclock.Duration) {
		var snapshot []int
		if needLoads {
			c.advanceAll(t)
			for i, in := range c.insts {
				loads[i] = in.srv.Pending()
			}
			snapshot = loads
		}
		in := c.insts[c.route.Route(user, snapshot)]
		in.routed++
		admitted++
		if s.Record != nil {
			s.Record.Add(t, "", user, service)
		}
		srv, sess := in.srv, user%s.Sessions
		in.w.At(t, func() { srv.Inject(sess, service) })
	}
	t := vclock.Time(0).Add(start)
	if rp := s.Replay; rp != nil {
		// Replay: the recorded instants, identities and demands stand in
		// for the gap/user/service draws; admission is bypassed (the
		// trace holds only admitted arrivals), routing runs live.
		for k := range rp.Entries {
			e := &rp.Entries[k]
			at := vclock.Time(0).Add(vclock.Duration(e.AtUS))
			if at.Before(t) || e.ServiceUS <= 0 {
				return nil, fmt.Errorf("cluster: replay entry %d: bad instant %dus or demand %dus", k, e.AtUS, e.ServiceUS)
			}
			t = at
			offered++
			dispatch(t, e.Session, vclock.Duration(e.ServiceUS))
		}
	} else {
		for k := int64(0); k < s.Requests; k++ {
			t = t.Add(expGap(rng, s.Rate))
			offered++
			if !c.admit.Admit(t) {
				rejected++
				continue
			}
			user := c.drawUser(rng)
			service := c.drawService(rng)
			dispatch(t, user, service)
		}
	}
	// Flush every queued injection, close the pools strictly after the
	// last arrival, and drain.
	c.advanceAll(t)
	closeAt := t.Add(vclock.Microsecond)
	for _, in := range c.insts {
		srv := in.srv
		in.w.At(closeAt, srv.Close)
	}
	c.advanceAll(closeAt.Add(s.Drain))
	return c.summarize(offered, admitted, rejected), nil
}

// InstanceSummary is one fleet member's slice of the aggregate. All
// durations are integer virtual microseconds, so the JSON encoding is
// exact and platform-independent.
type InstanceSummary struct {
	ID         int     `json:"id"`
	Routed     int64   `json:"routed"`
	Completed  int64   `json:"completed"`
	Throughput float64 `json:"throughput_rps"`
	P50Us      int64   `json:"p50_us"`
	P95Us      int64   `json:"p95_us"`
	P99Us      int64   `json:"p99_us"`
	MaxUs      int64   `json:"max_us"`
}

// Summary is one cluster run's result. Aggregate percentiles are exact
// nearest-rank over the union of every instance's samples (not an
// average of per-instance percentiles), via stats.LatencyRecorder.Merge.
// The advance shard count is deliberately absent: it must not — and
// therefore cannot — appear in the output.
type Summary struct {
	Preset      string            `json:"preset"`
	Instances   int               `json:"instances"`
	Sessions    int               `json:"sessions_per_instance"`
	Router      string            `json:"router"`
	Admission   string            `json:"admission"`
	Seed        int64             `json:"seed"`
	Offered   int64 `json:"offered"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	// Graceful-degradation buckets. Every offered request lands in
	// exactly one: offered == rejected + shed + failed + degraded +
	// goodput. On the legacy (fault-free, fire-and-forget) path goodput
	// is simply completed and shed/degraded are zero.
	Goodput     int64              `json:"goodput"`
	Degraded    int64              `json:"degraded"`
	Shed        int64              `json:"shed"`
	Failed      int64              `json:"failed"`
	WindowUs    int64              `json:"window_us"`
	Throughput  float64            `json:"throughput_rps"`
	P50Us       int64              `json:"p50_us"`
	P95Us       int64              `json:"p95_us"`
	P99Us       int64              `json:"p99_us"`
	MaxUs       int64              `json:"max_us"`
	PerInstance []InstanceSummary  `json:"per_instance"`
	Resilience  *ResilienceSummary `json:"resilience,omitempty"`
}

// PhaseSummary is the client-observed latency of successes born in one
// fault phase (before / during / after the compiled fault span).
type PhaseSummary struct {
	Phase string `json:"phase"`
	Count int64  `json:"count"`
	P50Us int64  `json:"p50_us"`
	P95Us int64  `json:"p95_us"`
	P99Us int64  `json:"p99_us"`
	MaxUs int64  `json:"max_us"`
}

// ResilienceSummary is the resilient run path's mechanism ledger: how
// often each policy fired, what the fleet lost, and how long the health
// monitor took to notice and recover.
type ResilienceSummary struct {
	Timeouts         int64          `json:"timeouts"`
	Retries          int64          `json:"retries"`
	RetriesDenied    int64          `json:"retries_denied"` // suppressed by the retry budget
	Hedges           int64          `json:"hedges"`
	HedgeWins        int64          `json:"hedge_wins"`
	Refused          int64          `json:"refused"` // dispatched at a down instance
	Lost             int64          `json:"lost"`    // response died with a crash
	BreakerOpens     int64          `json:"breaker_opens"`
	BreakerFastFails int64          `json:"breaker_fast_fails"`
	Ejections        int64          `json:"ejections"`
	Readmissions     int64          `json:"readmissions"`
	RecoveryUs       int64          `json:"recovery_us"` // slowest eject-to-readmit
	Phases           []PhaseSummary `json:"phases,omitempty"`
}

func (c *Cluster) summarize(offered, admitted, rejected int64) *Summary {
	s := &Summary{
		Preset:    c.spec.Preset,
		Instances: c.spec.Instances,
		Sessions:  c.spec.Sessions,
		Router:    c.spec.Router,
		Admission: c.spec.Admission,
		Seed:      c.spec.Seed,
		Offered:   offered,
		Admitted:  admitted,
		Rejected:  rejected,
	}
	agg := &stats.LatencyRecorder{}
	first, last := vclock.Never, vclock.Time(0)
	for _, in := range c.insts { // instance-ID order: aggregation is reproducible
		ls := in.srv.Finish()
		s.Completed += ls.Completed
		agg.Merge(&ls.Latency)
		if ls.Offered > 0 && in.srv.First().Before(first) {
			first = in.srv.First()
		}
		if in.srv.LastDone().After(last) {
			last = in.srv.LastDone()
		}
		s.PerInstance = append(s.PerInstance, InstanceSummary{
			ID:         in.id,
			Routed:     in.routed,
			Completed:  ls.Completed,
			Throughput: ls.Throughput(),
			P50Us:      ls.Latency.Percentile(0.50).Micros(),
			P95Us:      ls.Latency.Percentile(0.95).Micros(),
			P99Us:      ls.Latency.Percentile(0.99).Micros(),
			MaxUs:      ls.Latency.Max().Micros(),
		})
	}
	// Fire-and-forget has no partial outcomes: everything admitted was
	// served (or, if the drain was cut short, failed-by-omission).
	s.Goodput = s.Completed
	s.Failed = s.Admitted - s.Completed
	if s.Completed > 0 && last.After(first) {
		window := last.Sub(first)
		s.WindowUs = window.Micros()
		s.Throughput = float64(s.Completed) / window.Seconds()
	}
	s.P50Us = agg.Percentile(0.50).Micros()
	s.P95Us = agg.Percentile(0.95).Micros()
	s.P99Us = agg.Percentile(0.99).Micros()
	s.MaxUs = agg.Max().Micros()
	return s
}

// Run builds a fleet from spec, runs it, and tears it down.
func Run(spec Spec) (*Summary, error) {
	c, err := New(spec)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	return c.Run()
}
