package cluster

import (
	"fmt"

	"repro/internal/vclock"
)

// Routing policies. A router picks the instance for each admitted
// request; the choice is a pure function of its own state, the request's
// user, and (for load-aware policies) a load snapshot the cluster takes
// at the arrival instant — never of wall-clock time or goroutine
// scheduling, which is what keeps a sharded fleet run byte-identical to
// a serial one.
const (
	RouteRoundRobin  = "rr"
	RouteLeastLoaded = "least-loaded"
	RouteAffinity    = "affinity"
)

// RouterNames returns the valid routing policy names.
func RouterNames() []string {
	return []string{RouteRoundRobin, RouteLeastLoaded, RouteAffinity}
}

type router interface {
	// NeedsLoads reports whether Route consumes a load snapshot. The
	// cluster only pays the advance-to-arrival barrier for policies that
	// need one; blind policies let instances run far behind the arrival
	// front and catch up in bulk.
	NeedsLoads() bool
	// Route returns the target instance index. loads[i] is instance i's
	// pending-request depth at the arrival instant, or nil when
	// NeedsLoads is false.
	Route(user int, loads []int) int
}

func newRouter(name string, instances int) (router, error) {
	switch name {
	case RouteRoundRobin:
		return &roundRobin{n: instances}, nil
	case RouteLeastLoaded:
		return leastLoaded{}, nil
	case RouteAffinity:
		return affinity{n: instances}, nil
	}
	return nil, fmt.Errorf("cluster: no routing policy %q (have %v)", name, RouterNames())
}

// roundRobin deals arrivals to instances in strict rotation, the
// baseline that ignores both user identity and load.
type roundRobin struct {
	n    int
	next int
}

func (r *roundRobin) NeedsLoads() bool { return false }

func (r *roundRobin) Route(user int, loads []int) int {
	i := r.next
	r.next = (r.next + 1) % r.n
	return i
}

// leastLoaded sends each arrival to the instance with the fewest
// pending requests, ties broken by lowest index so the choice is
// deterministic.
type leastLoaded struct{}

func (leastLoaded) NeedsLoads() bool { return true }

func (leastLoaded) Route(user int, loads []int) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	_ = user
	return best
}

// affinity pins each user to one instance (user mod N) — the sticky-
// session policy. Under a uniform user population it balances like
// round-robin; under a hot-user skew it concentrates the hot users'
// load on their home instances, which is exactly the contrast the
// C-series measures.
type affinity struct {
	n int
}

func (affinity) NeedsLoads() bool { return false }

func (a affinity) Route(user int, loads []int) int { return user % a.n }

// Admission policies. An admitter decides, at each arrival instant,
// whether the request enters the fleet at all; rejected requests are
// counted but consume no downstream resources (and no RNG draws, so an
// admission policy change never re-randomizes the admitted subsequence's
// users or service demands).
const (
	AdmitAlways      = "always"
	AdmitTokenBucket = "token-bucket"
)

// AdmitterNames returns the valid admission policy names.
func AdmitterNames() []string {
	return []string{AdmitAlways, AdmitTokenBucket}
}

type admitter interface {
	Admit(now vclock.Time) bool
}

func newAdmitter(name string, rate, burst float64) (admitter, error) {
	switch name {
	case AdmitAlways:
		return alwaysAdmit{}, nil
	case AdmitTokenBucket:
		if rate <= 0 || burst < 1 {
			return nil, fmt.Errorf("cluster: token-bucket needs rate > 0 and burst >= 1 (got rate=%v burst=%v)", rate, burst)
		}
		return &tokenBucket{rate: rate, burst: burst, tokens: burst}, nil
	}
	return nil, fmt.Errorf("cluster: no admission policy %q (have %v)", name, AdmitterNames())
}

type alwaysAdmit struct{}

func (alwaysAdmit) Admit(vclock.Time) bool { return true }

// tokenBucket refills in virtual time: rate tokens per virtual second up
// to burst, one token per admitted request. Purely arithmetic over the
// arrival clock — no randomness, no wall time — so it is as
// deterministic as the arrival process itself.
type tokenBucket struct {
	rate   float64 // tokens per virtual second
	burst  float64
	tokens float64
	last   vclock.Time
}

func (b *tokenBucket) Admit(now vclock.Time) bool {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
