package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/vclock"
)

// This file compiles a fault.Plan's cluster-scoped rules (CrashInstance,
// StallInstance, DegradeInstance) into per-instance virtual-time
// timelines the resilience driver consults. Compilation is owned by the
// cluster — not by internal/fault — because only the cluster knows the
// instance-index namespace, and it is seeded so that AnyInstance (-1)
// victim picks resolve identically for a given (plan, seed, fleet size)
// whatever Spec.Shards is: all draws happen here, before any world
// advances.

// window is a half-open virtual-time interval [from, to).
type window struct {
	from, to vclock.Time
}

func (w window) contains(t vclock.Time) bool { return !t.Before(w.from) && t.Before(w.to) }

// instTimeline is one instance's compiled fault schedule.
type instTimeline struct {
	crashes  []window // down intervals; to==Never for crash-without-restart
	stalls   []window
	degrades []struct {
		w window
		f float64
	}
}

// instanceFaults is a compiled cluster fault plan.
type instanceFaults struct {
	inst []instTimeline
	// span bounds the whole faulted phase: the earliest fault onset and
	// the latest fault end (Never when some crash never restarts).
	span window
}

// compileFaults resolves a plan's instance-scoped rules against a fleet
// of n instances. The seed drives AnyInstance picks only; a plan with
// explicit indices compiles identically at any seed. Rule order fixes
// the RNG draw order, so compilation is deterministic.
func compileFaults(p *fault.Plan, n int, seed int64) (*instanceFaults, error) {
	f := &instanceFaults{inst: make([]instTimeline, n)}
	f.span = window{from: vclock.Never, to: 0}
	if p == nil {
		return f, nil
	}
	if err := p.Check(); err != nil {
		return nil, err
	}
	if p.HasThreadFaults() {
		return nil, fmt.Errorf("cluster: fault plan has thread-scoped kinds " +
			"(lost_notify/crash_thread/fork_exhaustion/stall_thread/clock_jitter); " +
			"cluster specs take instance-scoped kinds only")
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func(i int) (int, error) {
		if i == fault.AnyInstance {
			return rng.Intn(n), nil
		}
		if i >= n {
			return 0, fmt.Errorf("cluster: fault rule targets instance %d of a %d-instance fleet", i, n)
		}
		return i, nil
	}
	grow := func(w window) {
		if w.from.Before(f.span.from) {
			f.span.from = w.from
		}
		if w.to.After(f.span.to) {
			f.span.to = w.to
		}
	}
	epoch := vclock.Time(0)
	for _, r := range p.CrashInstance {
		i, err := pick(r.Instance)
		if err != nil {
			return nil, err
		}
		w := window{from: epoch.Add(r.At.Duration), to: vclock.Never}
		if r.Restart.Duration > 0 {
			w.to = w.from.Add(r.Restart.Duration)
		}
		f.inst[i].crashes = append(f.inst[i].crashes, w)
		grow(w)
	}
	for _, r := range p.StallInstance {
		i, err := pick(r.Instance)
		if err != nil {
			return nil, err
		}
		w := window{from: epoch.Add(r.From.Duration), to: epoch.Add(r.Until.Duration)}
		f.inst[i].stalls = append(f.inst[i].stalls, w)
		grow(w)
	}
	for _, r := range p.DegradeInstance {
		i, err := pick(r.Instance)
		if err != nil {
			return nil, err
		}
		w := window{from: epoch.Add(r.From.Duration), to: epoch.Add(r.Until.Duration)}
		f.inst[i].degrades = append(f.inst[i].degrades, struct {
			w window
			f float64
		}{w, r.Factor})
		grow(w)
	}
	for i := range f.inst {
		tl := &f.inst[i]
		sort.Slice(tl.crashes, func(a, b int) bool { return tl.crashes[a].from.Before(tl.crashes[b].from) })
		sort.Slice(tl.stalls, func(a, b int) bool { return tl.stalls[a].from.Before(tl.stalls[b].from) })
	}
	return f, nil
}

// empty reports whether the compiled plan injects nothing.
func (f *instanceFaults) empty() bool {
	for i := range f.inst {
		tl := &f.inst[i]
		if len(tl.crashes) > 0 || len(tl.stalls) > 0 || len(tl.degrades) > 0 {
			return false
		}
	}
	return true
}

// downAt reports whether instance i is crashed at time t.
func (f *instanceFaults) downAt(i int, t vclock.Time) bool {
	for _, w := range f.inst[i].crashes {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// stalledAt reports whether instance i is inside a stall window at t.
func (f *instanceFaults) stalledAt(i int, t vclock.Time) bool {
	for _, w := range f.inst[i].stalls {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// degradeAt returns instance i's service-time multiplier at t (1 when
// healthy). Overlapping brownouts compound.
func (f *instanceFaults) degradeAt(i int, t vclock.Time) float64 {
	m := 1.0
	for _, d := range f.inst[i].degrades {
		if d.w.contains(t) {
			m *= d.f
		}
	}
	return m
}

// phase names for graceful-degradation accounting, indexed by phaseIdx.
var phaseNames = [3]string{"healthy", "faulted", "recovered"}

// phaseIdx classifies a virtual time against the compiled fault span:
// 0 before any fault onset, 1 inside the faulted span, 2 after the last
// fault ends. A fault-free compilation classifies everything healthy.
func (f *instanceFaults) phaseIdx(t vclock.Time) int {
	if f.span.from == vclock.Never || t.Before(f.span.from) {
		return 0
	}
	if t.Before(f.span.to) {
		return 1
	}
	return 2
}

// arm schedules the server-side halves of the compiled plan into each
// instance world: crash/restore flips and stall windows. Degradation is
// applied driver-side, at dispatch, by scaling the service draw.
func (f *instanceFaults) arm(insts []*instance) {
	for i, in := range insts {
		srv, w := in.srv, in.w
		for _, cw := range f.inst[i].crashes {
			w.At(cw.from, srv.Crash)
			if cw.to != vclock.Never {
				w.At(cw.to, srv.Restore)
			}
		}
		for _, sw := range f.inst[i].stalls {
			until := sw.to
			w.At(sw.from, func() { srv.StallUntil(until) })
		}
	}
}
