package cluster

import (
	"container/heap"
	"sort"

	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// This file is the resilient run path: the event-driven cluster driver
// that Run switches to when the spec asks for faults, health-aware
// routing, or any client-side resilience policy (timeout, retries,
// hedging, circuit breaking). The legacy path injects fire-and-forget;
// this path tracks every request end to end — each attempt carries a
// token, each instance reports tracked Completions, and the driver runs
// a client state machine over them: retry with capped backoff under a
// fleet-wide budget, hedge at a p99-derived delay, trip breakers, and
// classify every admitted request into exactly one of goodput /
// degraded / shed / failed, so that
//
//	offered == rejected + shed + failed + degraded + goodput
//
// holds as an accounting identity, not a hope.
//
// Determinism is preserved by the same discipline as the legacy path,
// tightened for feedback loops: ALL client state lives in the driver
// and changes only at advance barriers. Client events (arrivals,
// probes, timeouts, retries, hedges) sit in one heap ordered by
// (time, insertion seq); each pop advances every world to the event
// time, drains the instances' Completion buffers in (time, instance-ID)
// order, applies them, then handles the event. Worlds never observe the
// client and the client reads worlds only at barriers, so Spec.Shards
// remains invisible in the output.

// --- circuit breaker -------------------------------------------------

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is one instance's client-side circuit breaker: closed until
// `after` consecutive failures, open for openFor, then half-open with a
// single trial in flight — success closes it, failure re-opens it. It
// is fed by request outcomes (timeouts, refusals, lost responses),
// unlike the health monitor, which is fed by probes; the two protect
// against different failure shapes and are deliberately independent.
type breaker struct {
	after   int // consecutive failures to open; 0 disables
	openFor vclock.Duration

	state      breakerState
	consecFail int
	openedAt   vclock.Time
	probing    bool

	opens     int64
	fastFails int64
}

// allow reports whether a dispatch to this instance may proceed, and
// counts a fast-fail when it may not. In half-open it admits exactly
// one trial at a time.
func (b *breaker) allow(now vclock.Time) bool {
	if b.after <= 0 {
		return true
	}
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if now.Sub(b.openedAt) >= b.openFor {
			b.state = bkHalfOpen
			b.probing = true
			return true
		}
		b.fastFails++
		return false
	default: // half-open
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		return true
	}
}

// abandon releases a half-open trial slot whose attempt was cancelled
// (a hedge loser): the trial reported neither success nor failure, so
// the breaker must let another through rather than fast-fail forever.
func (b *breaker) abandon() {
	if b.state == bkHalfOpen {
		b.probing = false
	}
}

func (b *breaker) onSuccess() {
	if b.after <= 0 {
		return
	}
	b.state, b.consecFail, b.probing = bkClosed, 0, false
}

func (b *breaker) onFailure(now vclock.Time) {
	if b.after <= 0 {
		return
	}
	if b.state == bkHalfOpen {
		b.state, b.openedAt, b.probing = bkOpen, now, false
		b.opens++
		return
	}
	b.consecFail++
	if b.state == bkClosed && b.consecFail >= b.after {
		b.state, b.openedAt = bkOpen, now
		b.opens++
	}
}

// --- client request state --------------------------------------------

// creq is one admitted request as the client sees it, across every
// attempt (original, retries, hedge).
type creq struct {
	user    int
	service vclock.Duration
	born    vclock.Time

	resolved bool
	attempts int // dispatches routed (including refused ones)
	retries  int
	hedged   bool
	pending  int // live attempts in flight
	lastInst int
	live     []*attempt
}

// attempt is one dispatched copy of a request on one instance.
type attempt struct {
	req   *creq
	inst  int
	token uint64
	hedge bool
	done  bool
}

// --- client event heap -----------------------------------------------

type evKind int

const (
	evArrival evKind = iota
	evProbe
	evTimeout
	evRetry
	evHedge
)

type clientEvent struct {
	at   vclock.Time
	seq  int64 // insertion order breaks time ties deterministically
	kind evKind
	req  *creq    // evRetry, evHedge
	att  *attempt // evTimeout
}

type eventHeap []*clientEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*clientEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// --- the driver ------------------------------------------------------

const unhealthyLoad = 1 << 30 // poisons least-loaded away from ejected instances

type resilientRun struct {
	c      *Cluster
	faults *instanceFaults
	health *healthMonitor
	brk    []breaker

	heap    eventHeap
	seq     int64
	barrier vclock.Time

	tokens    map[uint64]*attempt
	nextToken uint64
	loads     []int

	pendingArrivals int64
	outstanding     int64 // admitted, unresolved requests

	offered, admitted, rejected    int64
	goodput, degraded, shed, failed int64

	retriesIssued, retriesDenied int64
	hedges, hedgeWins            int64
	timeouts, refused, lost      int64

	firstArrival vclock.Time
	lastResolve  vclock.Time

	clientLat stats.LatencyRecorder    // successes, client-observed: hedge delay source
	phases    [3]stats.LatencyRecorder // indexed by phaseIdx(born)
}

// runResilient drives the fleet through the tracked-request state
// machine and returns the extended summary.
func (c *Cluster) runResilient() (*Summary, error) {
	s := c.spec
	r := &resilientRun{
		c:               c,
		faults:          c.faults,
		brk:             make([]breaker, len(c.insts)),
		tokens:          make(map[uint64]*attempt),
		loads:           make([]int, len(c.insts)),
		pendingArrivals: s.Requests,
		firstArrival:    vclock.Never,
	}
	if r.faults == nil {
		r.faults, _ = compileFaults(nil, len(c.insts), 0)
	}
	for i := range r.brk {
		r.brk[i] = breaker{after: s.BreakerAfter, openFor: s.BreakerOpenFor}
	}
	if s.ProbeEvery > 0 {
		r.health = newHealthMonitor(len(c.insts), s.FailAfter, s.RecoverAfter)
	}
	r.faults.arm(c.insts)

	rng := c.rng
	start := s.Start
	if start <= 0 {
		perPark := c.insts[0].w.Config().SwitchCost + 10*vclock.Microsecond
		start = vclock.Duration(s.Sessions)*perPark + 200*vclock.Millisecond
	}
	t0 := vclock.Time(0).Add(start)
	r.barrier = t0
	if s.ProbeEvery > 0 {
		r.push(t0, &clientEvent{kind: evProbe})
	}
	if s.Requests > 0 {
		r.push(t0.Add(expGap(rng, s.Rate)), &clientEvent{kind: evArrival})
	}

	for {
		for len(r.heap) > 0 {
			e := heap.Pop(&r.heap).(*clientEvent)
			r.advance(e.at)
			switch e.kind {
			case evArrival:
				r.onArrival(e.at)
			case evProbe:
				r.onProbe(e.at)
			case evTimeout:
				r.onTimeout(e.at, e.att)
			case evRetry:
				r.onRetry(e.at, e.req)
			case evHedge:
				r.onHedge(e.at, e.req)
			}
		}
		if r.outstanding == 0 {
			break
		}
		// In-flight work with no scheduled client events (no timeouts
		// configured): let the fleet drain and fold in whatever lands.
		before := r.outstanding
		r.advance(r.barrier.Add(s.Drain))
		if len(r.heap) == 0 && r.outstanding == before {
			break // nothing in flight will ever land
		}
	}

	// Close the pools strictly after the last client action and let the
	// worlds quiesce.
	closeAt := r.barrier.Add(vclock.Microsecond)
	for _, in := range c.insts {
		srv := in.srv
		in.w.At(closeAt, srv.Close)
	}
	c.advanceAll(closeAt.Add(s.Drain))
	r.drainCompletions()

	// Anything still unresolved — queued behind a stall longer than the
	// drain, say — failed from the client's point of view.
	r.failed += r.outstanding
	r.outstanding = 0
	return r.summary(), nil
}

func (r *resilientRun) push(at vclock.Time, e *clientEvent) {
	e.at, e.seq = at, r.seq
	r.seq++
	heap.Push(&r.heap, e)
}

// advance brings every world to t (if t is past the current barrier)
// and applies any tracked completions that landed.
func (r *resilientRun) advance(t vclock.Time) {
	if t.After(r.barrier) {
		r.c.advanceAll(t)
		r.barrier = t
	}
	r.drainCompletions()
}

// drainCompletions folds the instances' Completion buffers into the
// client state machine in (time, instance-ID) order — the only order
// that is independent of how worlds were dealt onto shards.
func (r *resilientRun) drainCompletions() {
	type tagged struct {
		inst int
		cp   workload.Completion
	}
	var all []tagged
	for i, in := range r.c.insts { // instance-ID order
		for _, cp := range in.srv.Drain() {
			all = append(all, tagged{i, cp})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].cp.At != all[b].cp.At {
			return all[a].cp.At.Before(all[b].cp.At)
		}
		return all[a].inst < all[b].inst
	})
	for _, tc := range all {
		r.onCompletion(tc.inst, tc.cp)
	}
}

func (r *resilientRun) onCompletion(inst int, cp workload.Completion) {
	att := r.tokens[cp.Token]
	delete(r.tokens, cp.Token)
	if att == nil || att.done {
		return // timed out, cancelled, or the request already resolved
	}
	att.done = true
	att.req.pending--
	if cp.OK {
		r.brk[inst].onSuccess()
		if !att.req.resolved {
			r.resolve(att.req, att, cp.At)
		}
		return
	}
	// The instance crashed between admission and response.
	r.lost++
	r.brk[inst].onFailure(cp.At)
	r.attemptFailed(att.req, cp.At)
}

// resolve closes a request as a success, classifies it, and cancels
// any sibling attempts still in flight (the hedge loser).
func (r *resilientRun) resolve(req *creq, winner *attempt, tc vclock.Time) {
	req.resolved = true
	r.outstanding--
	lat := tc.Sub(req.born)
	if req.attempts > 1 || (r.c.spec.DegradedOver > 0 && lat > r.c.spec.DegradedOver) {
		r.degraded++
	} else {
		r.goodput++
	}
	if winner.hedge {
		r.hedgeWins++
	}
	r.clientLat.Add(lat)
	r.phases[r.faults.phaseIdx(req.born)].Add(lat)
	if tc.After(r.lastResolve) {
		r.lastResolve = tc
	}
	for _, a := range req.live {
		if a == winner || a.done {
			continue
		}
		a.done = true
		req.pending--
		// Driver context at a barrier: safe to touch server state
		// directly. If the loser is still queued it dies unserved; if it
		// already started computing, its completion arrives token-less
		// and is dropped above.
		r.c.insts[a.inst].srv.CancelQueued(a.token)
		r.brk[a.inst].abandon()
		delete(r.tokens, a.token)
	}
}

// attemptFailed is the common tail of every failed attempt: retry if
// the policy and the fleet-wide budget allow, otherwise fail the
// request once nothing else is in flight for it.
func (r *resilientRun) attemptFailed(req *creq, now vclock.Time) {
	if req.resolved {
		return
	}
	s := r.c.spec
	if req.retries < s.Retries {
		if r.budgetAllows() {
			r.retriesIssued++
			req.retries++
			at := now.Add(r.backoff(req.retries))
			if at.Before(r.barrier) {
				at = r.barrier
			}
			r.push(at, &clientEvent{kind: evRetry, req: req})
			return
		}
		r.retriesDenied++
	}
	if req.pending == 0 {
		req.resolved = true
		r.outstanding--
		r.failed++
	}
}

// budgetAllows checks the fleet-wide retry budget: retries may be at
// most RetryBudget × offered-so-far. This is the retry-storm valve —
// per-request retry counts multiply under fleet-wide overload, a
// fleet-wide fraction cannot.
func (r *resilientRun) budgetAllows() bool {
	s := r.c.spec
	if s.RetryBudget <= 0 {
		return true
	}
	return float64(r.retriesIssued+1) <= s.RetryBudget*float64(r.offered)
}

// backoff returns the capped exponential backoff before retry n (1-based).
func (r *resilientRun) backoff(n int) vclock.Duration {
	s := r.c.spec
	d := s.RetryBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= s.RetryBackoffCap {
			return s.RetryBackoffCap
		}
	}
	if d > s.RetryBackoffCap {
		d = s.RetryBackoffCap
	}
	return d
}

// hedgeDelay is how long the client waits before duplicating a request:
// the observed p99 of successes so far, floored at HedgeAfter until
// enough samples accumulate.
func (r *resilientRun) hedgeDelay() vclock.Duration {
	d := r.c.spec.HedgeAfter
	if r.clientLat.Count() >= 20 {
		if p := r.clientLat.Percentile(0.99); p > d {
			d = p
		}
	}
	return d
}

// --- event handlers --------------------------------------------------

func (r *resilientRun) onArrival(t vclock.Time) {
	s := r.c.spec
	r.pendingArrivals--
	r.offered++
	// Same fixed per-arrival draw order as the legacy path: admission
	// first, then user and service only if admitted.
	if !r.c.admit.Admit(t) {
		r.rejected++
	} else {
		user := r.c.drawUser(r.c.rng)
		service := r.c.drawService(r.c.rng)
		r.admitted++
		req := &creq{user: user, service: service, born: t, lastInst: -1}
		r.outstanding++
		if r.firstArrival == vclock.Never {
			r.firstArrival = t
		}
		r.dispatch(req, -1, false, t)
	}
	if r.pendingArrivals > 0 {
		r.push(t.Add(expGap(r.c.rng, s.Rate)), &clientEvent{kind: evArrival})
	}
}

func (r *resilientRun) onProbe(t vclock.Time) {
	if r.health != nil {
		r.health.probe(t, func(i int) bool {
			// A shallow probe sees crashes and stalls, not brownouts.
			return !r.faults.downAt(i, t) && !r.faults.stalledAt(i, t)
		})
	}
	if r.pendingArrivals > 0 || r.outstanding > 0 {
		r.push(t.Add(r.c.spec.ProbeEvery), &clientEvent{kind: evProbe})
	}
}

func (r *resilientRun) onTimeout(t vclock.Time, att *attempt) {
	if att.done || att.req.resolved {
		return
	}
	att.done = true
	att.req.pending--
	r.timeouts++
	r.brk[att.inst].onFailure(t)
	r.c.insts[att.inst].srv.CancelQueued(att.token)
	delete(r.tokens, att.token)
	r.attemptFailed(att.req, t)
}

func (r *resilientRun) onRetry(t vclock.Time, req *creq) {
	if req.resolved {
		return
	}
	r.dispatch(req, req.lastInst, false, t)
}

func (r *resilientRun) onHedge(t vclock.Time, req *creq) {
	if req.resolved || req.hedged || req.pending == 0 {
		// Already answered, already hedged, or the primary failed
		// outright — the retry path owns recovery from failure; hedging
		// only shaves the slow-success tail.
		return
	}
	req.hedged = true
	r.dispatch(req, req.lastInst, true, t)
}

// --- dispatch --------------------------------------------------------

// choose picks the dispatch target: the base router's choice, failed
// over along the instance ring past ejected instances and open
// breakers, skipping `exclude` (the instance a retry or hedge is
// fleeing) unless it is the only healthy choice. Returns -1 when no
// instance is eligible.
func (r *resilientRun) choose(user, exclude int, now vclock.Time) int {
	n := len(r.c.insts)
	var snapshot []int
	if r.c.route.NeedsLoads() {
		for i, in := range r.c.insts {
			r.loads[i] = in.srv.Pending()
			if !r.health.isHealthy(i) {
				r.loads[i] = unhealthyLoad
			}
		}
		snapshot = r.loads
	}
	base := r.c.route.Route(user, snapshot)
	// A rotation router's failover is to keep rotating: skipping an
	// ejected instance by ring-scan would dump its whole share onto the
	// ring successor, while burning a turn per skip spreads it evenly
	// over the healthy remainder. Stateless routers (affinity) re-home
	// by ring-scan below — the pinned user's deterministic fallback.
	if _, rotates := r.c.route.(*roundRobin); rotates {
		for tries := 0; tries < n && !r.health.isHealthy(base); tries++ {
			base = r.c.route.Route(user, snapshot)
		}
	}
	fallback := -1
	for d := 0; d < n; d++ {
		j := (base + d) % n
		if !r.health.isHealthy(j) {
			continue
		}
		if j == exclude {
			if fallback < 0 {
				fallback = j
			}
			continue
		}
		if r.brk[j].allow(now) {
			return j
		}
	}
	if fallback >= 0 && r.brk[fallback].allow(now) {
		return fallback
	}
	return -1
}

func (r *resilientRun) dispatch(req *creq, exclude int, hedge bool, now vclock.Time) {
	inst := r.choose(req.user, exclude, now)
	if inst < 0 {
		if hedge {
			return // opportunistic; the primary is still in flight
		}
		if req.pending > 0 {
			return // something else is still in flight for this request
		}
		req.resolved = true
		r.outstanding--
		if req.attempts == 0 {
			r.shed++ // never dispatched anywhere
		} else {
			r.failed++
		}
		return
	}
	req.attempts++
	req.lastInst = inst
	in := r.c.insts[inst]
	in.routed++
	if r.faults.downAt(inst, now) {
		// Connection refused: instant failure, no service consumed. This
		// is what feeds the breaker fastest — and what the D1 control
		// (no health monitor) keeps paying for.
		r.refused++
		r.brk[inst].onFailure(now)
		if hedge {
			return
		}
		r.attemptFailed(req, now)
		return
	}
	if hedge {
		r.hedges++
	}
	svc := req.service
	if f := r.faults.degradeAt(inst, now); f > 1 {
		svc = vclock.Duration(float64(svc) * f)
	}
	tok := r.nextToken
	r.nextToken++
	att := &attempt{req: req, inst: inst, token: tok, hedge: hedge}
	r.tokens[tok] = att
	req.live = append(req.live, att)
	req.pending++
	srv, sess := in.srv, req.user%r.c.spec.Sessions
	in.w.At(now, func() { srv.InjectTracked(sess, svc, tok) })
	if r.c.spec.Timeout > 0 {
		r.push(now.Add(r.c.spec.Timeout), &clientEvent{kind: evTimeout, att: att})
	}
	if !hedge && !req.hedged && req.attempts == 1 && r.c.spec.HedgeAfter > 0 {
		r.push(now.Add(r.hedgeDelay()), &clientEvent{kind: evHedge, req: req})
	}
}

// --- summary ---------------------------------------------------------

func (r *resilientRun) summary() *Summary {
	c := r.c
	sum := &Summary{
		Preset:    c.spec.Preset,
		Instances: c.spec.Instances,
		Sessions:  c.spec.Sessions,
		Router:    c.spec.Router,
		Admission: c.spec.Admission,
		Seed:      c.spec.Seed,
		Offered:   r.offered,
		Admitted:  r.admitted,
		Rejected:  r.rejected,
		Goodput:   r.goodput,
		Degraded:  r.degraded,
		Shed:      r.shed,
		Failed:    r.failed,
		Completed: r.goodput + r.degraded,
	}
	for _, in := range c.insts { // instance-ID order: reproducible
		ls := in.srv.Finish()
		sum.PerInstance = append(sum.PerInstance, InstanceSummary{
			ID:         in.id,
			Routed:     in.routed,
			Completed:  ls.Completed,
			Throughput: ls.Throughput(),
			P50Us:      ls.Latency.Percentile(0.50).Micros(),
			P95Us:      ls.Latency.Percentile(0.95).Micros(),
			P99Us:      ls.Latency.Percentile(0.99).Micros(),
			MaxUs:      ls.Latency.Max().Micros(),
		})
	}
	res := &ResilienceSummary{
		Timeouts:      r.timeouts,
		Retries:       r.retriesIssued,
		RetriesDenied: r.retriesDenied,
		Hedges:        r.hedges,
		HedgeWins:     r.hedgeWins,
		Refused:       r.refused,
		Lost:          r.lost,
	}
	for i := range r.brk {
		res.BreakerOpens += r.brk[i].opens
		res.BreakerFastFails += r.brk[i].fastFails
	}
	if r.health != nil {
		res.Ejections = r.health.ejections
		res.Readmissions = r.health.readmissions
		res.RecoveryUs = r.health.ttrMax.Micros()
	}
	// Aggregate percentiles are client-observed (born → answered), not
	// server-side attempt latencies: retries and hedges must not launder
	// the tail. Phase slices carry the before/during/after story.
	agg := &stats.LatencyRecorder{}
	for i := range r.phases {
		ph := &r.phases[i]
		if ph.Count() == 0 {
			continue
		}
		agg.Merge(ph)
		res.Phases = append(res.Phases, PhaseSummary{
			Phase: phaseNames[i],
			Count: int64(ph.Count()),
			P50Us: ph.Percentile(0.50).Micros(),
			P95Us: ph.Percentile(0.95).Micros(),
			P99Us: ph.Percentile(0.99).Micros(),
			MaxUs: ph.Max().Micros(),
		})
	}
	sum.Resilience = res
	if sum.Completed > 0 && r.firstArrival != vclock.Never && r.lastResolve.After(r.firstArrival) {
		w := r.lastResolve.Sub(r.firstArrival)
		sum.WindowUs = w.Micros()
		sum.Throughput = float64(sum.Completed) / w.Seconds()
	}
	sum.P50Us = agg.Percentile(0.50).Micros()
	sum.P95Us = agg.Percentile(0.95).Micros()
	sum.P99Us = agg.Percentile(0.99).Micros()
	sum.MaxUs = agg.Max().Micros()
	return sum
}
