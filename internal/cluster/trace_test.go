package cluster

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	wspec "repro/internal/workload/spec"
)

// The fleet's request trace is an artifact: what the cluster admitted,
// in arrival order, with the drawn demands. These tests pin its two
// contracts — byte-determinism across advance shards, and replayability
// under a different router.

func recordRun(t *testing.T, spec Spec) (*wspec.Trace, *Summary) {
	t.Helper()
	tr := wspec.NewTrace("fleet", spec.Seed)
	spec.Record = tr
	sum := mustRun(t, spec)
	if len(tr.Entries) == 0 {
		t.Fatal("recorded no entries")
	}
	return tr, sum
}

func TestTraceRecordShardDeterminism(t *testing.T) {
	base, baseSum := recordRun(t, smallSpec())
	for _, shards := range []int{2, runtime.GOMAXPROCS(0)} {
		spec := smallSpec()
		spec.Shards = shards
		tr, sum := recordRun(t, spec)
		if !bytes.Equal(tr.Bytes(), base.Bytes()) {
			t.Errorf("trace at %d shards differs from serial", shards)
		}
		if marshal(t, sum) != marshal(t, baseSum) {
			t.Errorf("summary at %d shards differs from serial", shards)
		}
	}
}

// TestTraceReplayReproduces: replaying a recorded trace under the same
// spec reproduces the run, and re-recording the replay reproduces the
// trace byte-for-byte.
func TestTraceReplayReproduces(t *testing.T) {
	tr, live := recordRun(t, smallSpec())

	spec := smallSpec()
	spec.Replay = tr
	rerec := wspec.NewTrace("fleet", spec.Seed)
	spec.Record = rerec
	replayed := mustRun(t, spec)
	if marshal(t, replayed) != marshal(t, live) {
		t.Errorf("replayed summary differs from the live run:\n%s\n%s",
			marshal(t, replayed), marshal(t, live))
	}
	if !bytes.Equal(rerec.Bytes(), tr.Bytes()) {
		t.Errorf("re-recorded trace differs from the original")
	}
}

// TestTraceReplayUnderDifferentRouter: the trace fixes the offered load
// (instants, users, demands — the admitted subsequence of a token-bucket
// run), so a replay routes the *same* arrivals with a different policy.
// That is the A/B experiment the artifact exists for.
func TestTraceReplayUnderDifferentRouter(t *testing.T) {
	spec := smallSpec()
	spec.Admission = AdmitTokenBucket
	spec.TokenRate = 15_000
	spec.TokenBurst = 32
	tr, live := recordRun(t, spec)
	if live.Rejected == 0 {
		t.Fatalf("token bucket rejected nothing; the admitted-subsequence claim is untested")
	}
	if int64(len(tr.Entries)) != live.Admitted {
		t.Fatalf("trace holds %d entries, want the %d admitted", len(tr.Entries), live.Admitted)
	}

	replay := smallSpec()
	replay.Router = RouteLeastLoaded
	replay.Replay = tr
	sum := mustRun(t, replay)
	if sum.Offered != live.Admitted || sum.Admitted != live.Admitted || sum.Rejected != 0 {
		t.Errorf("replay offered=%d admitted=%d rejected=%d, want %d/%d/0 (admission bypassed)",
			sum.Offered, sum.Admitted, sum.Rejected, live.Admitted, live.Admitted)
	}
	if sum.Completed != live.Completed {
		t.Errorf("replay completed %d of the same offered load, live completed %d",
			sum.Completed, live.Completed)
	}
}

func TestTraceRejectedOnResilientPath(t *testing.T) {
	spec := smallSpec()
	spec.Retries = 1
	spec.Record = wspec.NewTrace("fleet", spec.Seed)
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "fire-and-forget") {
		t.Errorf("Record on the resilient path: err = %v, want the fire-and-forget rejection", err)
	}
}
