package cluster

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/vclock"
)

// smallSpec is a quick fleet that still exercises queueing: 4 instances,
// aggregate rate high enough that sessions overlap requests.
func smallSpec() Spec {
	return Spec{
		Preset:    "w1-echo",
		Instances: 4,
		Sessions:  16,
		Router:    RouteRoundRobin,
		Admission: AdmitAlways,
		Seed:      7,
		Requests:  2000,
		Rate:      20_000,
		Service:   20 * vclock.Microsecond,
	}
}

func mustRun(t *testing.T, spec Spec) *Summary {
	t.Helper()
	sum, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func marshal(t *testing.T, sum *Summary) string {
	t.Helper()
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The acceptance-criterion suite: the same spec run with 1, 2, and
// GOMAXPROCS advance shards produces byte-identical aggregated JSON,
// for both a lazy-advance policy (rr) and a per-arrival-barrier policy
// (least-loaded).
func TestShardDeterminism(t *testing.T) {
	shardCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, routerName := range []string{RouteRoundRobin, RouteLeastLoaded} {
		t.Run(routerName, func(t *testing.T) {
			spec := smallSpec()
			spec.Router = routerName
			var want string
			for _, shards := range shardCounts {
				spec.Shards = shards
				got := marshal(t, mustRun(t, spec))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("shards=%d changed the summary\nwant:\n%s\ngot:\n%s", shards, want, got)
				}
			}
		})
	}
}

// Re-running an identical spec must reproduce the identical summary —
// the single-shard determinism baseline the shard suite builds on.
func TestRerunDeterminism(t *testing.T) {
	a := marshal(t, mustRun(t, smallSpec()))
	b := marshal(t, mustRun(t, smallSpec()))
	if a != b {
		t.Fatalf("identical specs diverged:\n%s\nvs\n%s", a, b)
	}
}

// Every offered request is accounted for: admitted+rejected=offered,
// routed sums to admitted, and with a generous drain everything
// admitted completes.
func TestConservation(t *testing.T) {
	sum := mustRun(t, smallSpec())
	if sum.Offered != 2000 {
		t.Fatalf("offered = %d, want 2000", sum.Offered)
	}
	if sum.Admitted+sum.Rejected != sum.Offered {
		t.Fatalf("admitted %d + rejected %d != offered %d", sum.Admitted, sum.Rejected, sum.Offered)
	}
	var routed int64
	for _, in := range sum.PerInstance {
		routed += in.Routed
	}
	if routed != sum.Admitted {
		t.Fatalf("sum of routed = %d, want admitted %d", routed, sum.Admitted)
	}
	if sum.Completed != sum.Admitted {
		t.Fatalf("completed = %d, want %d (drain should empty the queues)", sum.Completed, sum.Admitted)
	}
	if sum.Rejected != 0 {
		t.Fatalf("always-admit rejected %d", sum.Rejected)
	}
	if sum.P50Us <= 0 || sum.P99Us < sum.P95Us || sum.P95Us < sum.P50Us || sum.MaxUs < sum.P99Us {
		t.Fatalf("percentiles not monotone: p50=%d p95=%d p99=%d max=%d", sum.P50Us, sum.P95Us, sum.P99Us, sum.MaxUs)
	}
	if sum.Throughput <= 0 || sum.WindowUs <= 0 {
		t.Fatalf("degenerate window: throughput=%v window=%dus", sum.Throughput, sum.WindowUs)
	}
}

// Round-robin deals admitted requests evenly: instance routed counts
// differ by at most one.
func TestRoundRobinBalance(t *testing.T) {
	sum := mustRun(t, smallSpec())
	min, max := sum.PerInstance[0].Routed, sum.PerInstance[0].Routed
	for _, in := range sum.PerInstance {
		if in.Routed < min {
			min = in.Routed
		}
		if in.Routed > max {
			max = in.Routed
		}
	}
	if max-min > 1 {
		t.Fatalf("rr imbalance: min=%d max=%d", min, max)
	}
}

// Affinity pins users to instances; with a hot-user skew the hot users'
// home instances must carry visibly more load than under round-robin.
func TestAffinitySkewConcentratesLoad(t *testing.T) {
	spec := smallSpec()
	spec.Router = RouteAffinity
	spec.Users = 64
	spec.HotUsers = 2
	spec.HotFraction = 0.5
	sum := mustRun(t, spec)
	// Users 0 and 1 live on instances 0 and 1; together they absorb the
	// hot half of the load on top of their uniform share.
	hot := sum.PerInstance[0].Routed + sum.PerInstance[1].Routed
	cold := sum.PerInstance[2].Routed + sum.PerInstance[3].Routed
	if hot <= cold*3/2 {
		t.Fatalf("affinity skew did not concentrate: hot instances %d vs cold %d", hot, cold)
	}
}

// Least-loaded must spread a heavy-tailed workload more evenly than a
// blind policy: no instance's pending depth is allowed to run away, so
// the worst instance p99 stays at or below round-robin's.
func TestLeastLoadedBeatsRoundRobinOnTails(t *testing.T) {
	base := smallSpec()
	base.Requests = 1500
	base.Rate = 40_000
	base.Service = 30 * vclock.Microsecond
	base.HeavyFraction = 0.05
	base.HeavyFactor = 40

	rr := base
	rr.Router = RouteRoundRobin
	ll := base
	ll.Router = RouteLeastLoaded
	rrSum, llSum := mustRun(t, rr), mustRun(t, ll)
	if llSum.P99Us > rrSum.P99Us {
		t.Fatalf("least-loaded p99 %dus worse than rr %dus under heavy tail", llSum.P99Us, rrSum.P99Us)
	}
}

// Token-bucket admission under 2x overload rejects roughly half the
// offered load, and the rejected requests never reach any instance.
func TestTokenBucketRejects(t *testing.T) {
	spec := smallSpec()
	spec.Admission = AdmitTokenBucket
	spec.Rate = 20_000
	spec.TokenRate = 10_000
	spec.TokenBurst = 10
	sum := mustRun(t, spec)
	if sum.Rejected == 0 {
		t.Fatal("2x overload through a 1x bucket rejected nothing")
	}
	frac := float64(sum.Rejected) / float64(sum.Offered)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("rejected fraction %.2f, want ~0.5", frac)
	}
	var routed int64
	for _, in := range sum.PerInstance {
		routed += in.Routed
	}
	if routed != sum.Admitted {
		t.Fatalf("routed %d != admitted %d", routed, sum.Admitted)
	}
}

// Admission decisions must not re-randomize the admitted subsequence:
// with token-bucket on, every admitted request's user/service draws are
// the same as they would have been for those arrivals under always-
// admit, so per-instance session spread stays sane. We verify the
// cheaper invariant directly: rejected+admitted accounting and
// determinism under the policy.
func TestTokenBucketDeterminism(t *testing.T) {
	spec := smallSpec()
	spec.Admission = AdmitTokenBucket
	spec.TokenRate = 10_000
	spec.TokenBurst = 10
	a := marshal(t, mustRun(t, spec))
	spec.Shards = runtime.GOMAXPROCS(0)
	b := marshal(t, mustRun(t, spec))
	if a != b {
		t.Fatalf("token-bucket summary diverged across shard counts:\n%s\nvs\n%s", a, b)
	}
}

// The cedar and gvx presets run routed sessions on top of the paper-era
// background population; the fleet still drains and aggregates.
func TestBackgroundPresets(t *testing.T) {
	for _, preset := range []string{"cedar", "gvx"} {
		t.Run(preset, func(t *testing.T) {
			spec := Spec{
				Preset:    preset,
				Instances: 2,
				Sessions:  8,
				Seed:      3,
				Requests:  200,
				Rate:      2000,
				Service:   50 * vclock.Microsecond,
				Drain:     10 * vclock.Second,
			}
			sum := mustRun(t, spec)
			if sum.Completed == 0 {
				t.Fatal("no requests completed under background preset")
			}
			if sum.Completed != sum.Admitted {
				t.Fatalf("completed %d != admitted %d", sum.Completed, sum.Admitted)
			}
			spec.Shards = 2
			if a, b := marshal(t, sum), marshal(t, mustRun(t, spec)); a != b {
				t.Fatalf("%s preset diverged across shard counts", preset)
			}
		})
	}
}

// Spec validation rejects unrunnable fleets with diagnostics.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no instances", func(s *Spec) { s.Instances = 0 }},
		{"no sessions", func(s *Spec) { s.Sessions = 0 }},
		{"no requests", func(s *Spec) { s.Requests = 0 }},
		{"no rate", func(s *Spec) { s.Rate = 0 }},
		{"bad preset", func(s *Spec) { s.Preset = "vax" }},
		{"bad router", func(s *Spec) { s.Router = "random" }},
		{"bad admission", func(s *Spec) { s.Admission = "maybe" }},
		{"hot users exceed users", func(s *Spec) { s.Users = 4; s.HotUsers = 9 }},
		{"hot fraction out of range", func(s *Spec) { s.HotUsers = 1; s.HotFraction = 1.5 }},
		{"heavy fraction out of range", func(s *Spec) { s.HeavyFraction = -0.2 }},
		{"token bucket without rate", func(s *Spec) { s.Admission = AdmitTokenBucket }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallSpec()
			tc.mut(&spec)
			if _, err := Run(spec); err == nil {
				t.Fatal("bad spec accepted")
			}
		})
	}
}

// A Cluster refuses to run twice: its worlds are consumed.
func TestRunTwice(t *testing.T) {
	c, err := New(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}
