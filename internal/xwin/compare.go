package xwin

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// ClientKind selects one of the two §5.6 client-library designs.
type ClientKind int

// The two approaches the paper studied.
const (
	ClientXlib ClientKind = iota // thread-safe Xlib: library mutex, short-timeout reads
	ClientXl                     // Xl: dedicated reading thread, CV timeouts
)

// String names the kind.
func (k ClientKind) String() string {
	if k == ClientXlib {
		return "modified Xlib"
	}
	return "Xl"
}

// CompareResult summarizes one client-model run for the §5.6 table.
type CompareResult struct {
	Kind          ClientKind
	EventsGot     int
	MeanEventLat  vclock.Duration // server delivery -> GetEvent return
	Flushes       int
	EmptyFlushes  int
	MeanBatch     float64         // output requests per non-empty flush
	MaxEnterDelay vclock.Duration // worst library-mutex acquisition delay
}

// RunClientComparison drives one client model for dur of virtual time:
// a painter queues output requests steadily, two client threads (one
// high-, one low-priority) poll GetEvent, and the server delivers input
// events every eventEvery. hooks carries the caller's observability
// seams; the zero value is fine.
func RunClientComparison(kind ClientKind, eventEvery vclock.Duration, seed int64, dur vclock.Duration, hooks sim.Hooks) CompareResult {
	w := sim.NewWorld(sim.Config{Seed: seed, Hooks: hooks})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	conn := NewConn(w)

	var client Client
	var inversionOf func() vclock.Duration
	switch kind {
	case ClientXlib:
		x := NewXlibClient(w, reg, conn)
		client = x
		inversionOf = func() vclock.Duration { return x.MaxEnterDelay }
	default:
		x := NewXlClient(w, reg, conn, 50*vclock.Millisecond)
		client = x
		inversionOf = func() vclock.Duration { return x.MaxEnterDelay }
	}

	// The server delivers input events periodically.
	seq := 0
	w.Every(eventEvery, func() {
		conn.Deliver(seq)
		seq++
	})

	// A painter queues output requests in a steady stream; with working
	// batching these coalesce into few large flushes.
	w.Spawn("painter", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			t.Compute(2 * vclock.Millisecond)
			client.QueueOutput(t, 1)
		}
	})

	// Two event consumers; the high-priority one measures how long the
	// library can lock it out (the §5.6 inversion).
	got := 0
	var latSum vclock.Duration
	consume := func(t *sim.Thread) any {
		for {
			ev, ok := client.GetEvent(t, 500*vclock.Millisecond)
			if ok {
				got++
				latSum += t.Now().Sub(ev.Delivered)
			}
			t.Compute(300 * vclock.Microsecond)
		}
	}
	w.Spawn("consumer-hi", sim.PriorityHigh, consume)
	w.Spawn("consumer-lo", sim.PriorityLow, consume)

	w.Run(vclock.Time(0).Add(dur))

	res := CompareResult{
		Kind:          kind,
		EventsGot:     got,
		Flushes:       conn.Flushes(),
		EmptyFlushes:  conn.EmptyFlushes(),
		MeanBatch:     conn.MeanBatch(),
		MaxEnterDelay: inversionOf(),
	}
	if got > 0 {
		res.MeanEventLat = latSum / vclock.Duration(got)
	}
	return res
}
