package xwin

import (
	"reflect"
	"testing"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func TestMergeRequests(t *testing.T) {
	batch := []PaintRequest{
		{Target: 1, Seq: 1}, {Target: 2, Seq: 2}, {Target: 1, Seq: 3}, {Target: 3, Seq: 4}, {Target: 2, Seq: 5},
	}
	got := MergeRequests(batch)
	want := []PaintRequest{{Target: 1, Seq: 3}, {Target: 3, Seq: 4}, {Target: 2, Seq: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	if out := MergeRequests(nil); len(out) != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestServerAccounting(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	srv := NewServer(w)
	srv.FlushCost = vclock.Millisecond
	srv.RequestCost = 100 * vclock.Microsecond
	var elapsed vclock.Duration
	w.Spawn("client", sim.PriorityNormal, func(t *sim.Thread) any {
		start := t.Now()
		batch := []PaintRequest{{Target: 1, Born: 0}, {Target: 2, Born: 0}}
		srv.Flush(t, batch)
		srv.ObserveBatch(t.Now(), batch)
		elapsed = t.Now().Sub(start)
		t.Compute(10 * vclock.Millisecond)
		srv.Flush(t, []PaintRequest{{Target: 1, Born: t.Now()}})
		srv.Flush(t, nil) // no-op
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if elapsed != vclock.Millisecond+200*vclock.Microsecond {
		t.Errorf("flush cost = %v, want 1.2ms", elapsed)
	}
	if srv.Flushes() != 2 || srv.Requests() != 3 {
		t.Errorf("flushes=%d requests=%d", srv.Flushes(), srv.Requests())
	}
	if srv.MaxPaintGap() < 10*vclock.Millisecond {
		t.Errorf("max gap = %v, want >= 10ms", srv.MaxPaintGap())
	}
	if srv.MeanLatency() <= 0 {
		t.Error("mean latency should be positive")
	}
}

// TestYieldButNotToMeBeatsPlainYield is the §5.2 headline: the
// YieldButNotToMe fix lets the buffer thread merge, cutting server
// transactions and roughly tripling the imaging thread's throughput.
func TestYieldButNotToMeBeatsPlainYield(t *testing.T) {
	dur := 5 * vclock.Second
	plain := DefaultPipelineConfig()
	plain.Strategy = paradigm.SlackYield
	fixed := DefaultPipelineConfig()
	fixed.Strategy = paradigm.SlackYieldButNotToMe

	p := RunPipeline(plain, 50*vclock.Millisecond, 1, dur)
	f := RunPipeline(fixed, 50*vclock.Millisecond, 1, dur)

	if p.MergeRatio > 1.2 {
		t.Errorf("plain yield merge ratio = %.2f, want ~1 (no merging, §5.2 bug)", p.MergeRatio)
	}
	if f.MergeRatio < 3 {
		t.Errorf("fixed merge ratio = %.2f, want >> 1", f.MergeRatio)
	}
	if f.Flushes >= p.Flushes/2 {
		t.Errorf("fixed flushes %d should be far below plain %d", f.Flushes, p.Flushes)
	}
	improvement := float64(f.Produced) / float64(p.Produced)
	if improvement < 2 || improvement > 6 {
		t.Errorf("throughput improvement = %.2fx, want ~3x", improvement)
	}
}

// TestQuantumClocksTheBatches is §6.3: with YieldButNotToMe the flush
// period tracks the scheduling quantum.
func TestQuantumClocksTheBatches(t *testing.T) {
	dur := 5 * vclock.Second
	cfg := DefaultPipelineConfig()
	r20 := RunPipeline(cfg, 20*vclock.Millisecond, 1, dur)
	r50 := RunPipeline(cfg, 50*vclock.Millisecond, 1, dur)
	r1000 := RunPipeline(cfg, vclock.Second, 1, dur)

	// Longer quantum => fewer, bigger batches and burstier painting.
	if !(r20.Flushes > r50.Flushes && r50.Flushes > r1000.Flushes) {
		t.Errorf("flushes should fall with quantum: 20ms=%d 50ms=%d 1s=%d", r20.Flushes, r50.Flushes, r1000.Flushes)
	}
	if !(r1000.MergeRatio > r50.MergeRatio && r50.MergeRatio > r20.MergeRatio) {
		t.Errorf("merge ratio should grow with quantum: %v %v %v", r20.MergeRatio, r50.MergeRatio, r1000.MergeRatio)
	}
	// "If the quantum were 1 second, then X events would be buffered for
	// one second ... very bursty screen painting."
	if r1000.MaxPaintGap < 900*vclock.Millisecond {
		t.Errorf("1s quantum max paint gap = %v, want ~1s bursts", r1000.MaxPaintGap)
	}
	if r50.MaxPaintGap > 200*vclock.Millisecond {
		t.Errorf("50ms quantum max paint gap = %v, want well under 200ms", r50.MaxPaintGap)
	}
}

// TestTinyQuantumDefeatsYieldButNotToMe is the other §6.3 edge: "if the
// quantum were 1 millisecond, then the YieldButNotToMe would yield only
// very briefly and we would be back to the start of our problems".
func TestTinyQuantumDefeatsYieldButNotToMe(t *testing.T) {
	dur := 5 * vclock.Second
	cfg := DefaultPipelineConfig()
	tiny := RunPipeline(cfg, vclock.Millisecond, 1, dur)
	normal := RunPipeline(cfg, 50*vclock.Millisecond, 1, dur)
	if tiny.MergeRatio > normal.MergeRatio/2 {
		t.Errorf("1ms quantum merge ratio %.2f should collapse versus 50ms's %.2f", tiny.MergeRatio, normal.MergeRatio)
	}
}

// TestSleepStrategyNeedsShortQuantum is §6.3's third observation: a
// timeout-based buffer thread works if the timeout granularity (tied to
// the quantum) is ~20ms, but with PCR's 50ms granularity the batching
// latency hurts.
func TestSleepStrategyNeedsShortQuantum(t *testing.T) {
	dur := 5 * vclock.Second
	cfg := DefaultPipelineConfig()
	cfg.Strategy = paradigm.SlackSleep
	cfg.Slack = 20 * vclock.Millisecond

	run := func(granularity vclock.Duration) PipelineResult {
		w := sim.NewWorld(sim.Config{TimeoutGranularity: granularity, Seed: 1})
		defer w.Shutdown()
		reg := paradigm.NewRegistry()
		srv := NewServer(w)
		p := StartPipeline(w, reg, srv, cfg)
		w.Run(vclock.Time(0).Add(dur))
		return PipelineResult{
			Produced: p.Produced(), Flushes: srv.Flushes(),
			MergeRatio: p.MergeRatio(), MeanLatency: srv.MeanLatency(),
		}
	}
	fine := run(20 * vclock.Millisecond)   // a 20ms-quantum PCR
	coarse := run(50 * vclock.Millisecond) // the real PCR
	if fine.MergeRatio < 2 {
		t.Errorf("20ms-granularity sleep strategy merge ratio = %.2f, want batching to work", fine.MergeRatio)
	}
	if coarse.MeanLatency <= fine.MeanLatency {
		t.Errorf("50ms granularity latency %v should exceed 20ms granularity's %v", coarse.MeanLatency, fine.MeanLatency)
	}
}

// TestXlibVsXl is §5.6: the dedicated reading thread eliminates forced
// flushes (batching works) and shrinks the library-mutex inversion
// window.
func TestXlibVsXl(t *testing.T) {
	dur := 10 * vclock.Second
	xlib := RunClientComparison(ClientXlib, 100*vclock.Millisecond, 1, dur, sim.Hooks{})
	xl := RunClientComparison(ClientXl, 100*vclock.Millisecond, 1, dur, sim.Hooks{})

	if xlib.EventsGot == 0 || xl.EventsGot == 0 {
		t.Fatalf("clients got no events: xlib=%d xl=%d", xlib.EventsGot, xl.EventsGot)
	}
	// Forced flush-before-read defeats batching: many more flushes, far
	// smaller batches.
	if xlib.Flushes < 2*xl.Flushes {
		t.Errorf("xlib flushes %d should far exceed xl's %d", xlib.Flushes, xl.Flushes)
	}
	if xlib.MeanBatch > xl.MeanBatch/2 {
		t.Errorf("xlib mean batch %.1f should be far below xl's %.1f", xlib.MeanBatch, xl.MeanBatch)
	}
	// The library mutex held across reads can lock a client out for up
	// to the short read timeout; Xl's window is tiny.
	if xlib.MaxEnterDelay < 10*vclock.Millisecond {
		t.Errorf("xlib inversion window = %v, want tens of ms", xlib.MaxEnterDelay)
	}
	if xl.MaxEnterDelay > xlib.MaxEnterDelay/4 {
		t.Errorf("xl inversion window %v should be far below xlib's %v", xl.MaxEnterDelay, xlib.MaxEnterDelay)
	}
	if ClientXlib.String() == ClientXl.String() {
		t.Error("kind names should differ")
	}
}

func TestConnReadConcurrentPanics(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	conn := NewConn(w)
	w.Spawn("r1", sim.PriorityNormal, func(th *sim.Thread) any {
		conn.Read(th, 0)
		return nil
	})
	r2 := w.Spawn("r2", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(vclock.Millisecond)
		conn.Read(th, 0)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if r2.Err() == nil {
		t.Fatal("second concurrent reader should panic")
	}
}

func TestConnBatchingAccounting(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	conn := NewConn(w)
	w.Spawn("writer", sim.PriorityNormal, func(th *sim.Thread) any {
		conn.QueueOutput(3)
		conn.FlushOutput(th)
		conn.FlushOutput(th) // empty
		conn.QueueOutput(5)
		conn.FlushOutput(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if conn.Flushes() != 3 || conn.EmptyFlushes() != 1 {
		t.Fatalf("flushes=%d empty=%d", conn.Flushes(), conn.EmptyFlushes())
	}
	if conn.MeanBatch() != 4.0 { // (3+5)/2 non-empty flushes
		t.Fatalf("mean batch = %v", conn.MeanBatch())
	}
}

func TestPipelineStop(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	srv := NewServer(w)
	p := StartPipeline(w, reg, srv, DefaultPipelineConfig())
	w.At(vclock.Time(200*vclock.Millisecond), p.Stop)
	out := w.Run(vclock.Time(2 * vclock.Second))
	if out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v (pipeline should drain and exit after Stop)", out)
	}
	if p.Produced() == 0 || srv.Flushes() == 0 {
		t.Fatal("pipeline did nothing before Stop")
	}
}
