package xwin

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Pipeline is the §5.2 user-feedback pipeline: an imaging thread produces
// paint requests onto a queue and NOTIFYs a higher-priority buffer thread
// (a slack process), which gathers, merges overlapping requests, and
// sends them to the X server only occasionally.
type Pipeline struct {
	W      *sim.World
	Server *Server
	Buffer *BufferThread

	produced int
	stopped  bool
}

// PipelineConfig parameterizes the experiment.
type PipelineConfig struct {
	// Strategy is how the buffer thread adds slack: the broken plain
	// YIELD, the YieldButNotToMe fix, SlackSleep (§6.3's alternative), or
	// SlackNone (no batching at all).
	Strategy paradigm.WaitStrategy
	// Slack is the SlackSleep interval.
	Slack vclock.Duration
	// Targets is the number of distinct window regions the imaging
	// thread paints; more targets means less mergeable overlap.
	Targets int
	// ProduceCost is the imaging thread's CPU per paint request.
	ProduceCost vclock.Duration
	// BufferPriority and ImagePriority reproduce the §5.2 inversion: the
	// buffer thread outranks its producer.
	BufferPriority sim.Priority
	ImagePriority  sim.Priority
	// Hooks carries the observability seams (sim.Config.Hooks) into the
	// world RunPipeline builds. Only RunPipeline consults it;
	// StartPipeline callers configure hooks on their own world.
	Hooks sim.Hooks
}

// DefaultPipelineConfig returns the §5.2 operating point.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Strategy:       paradigm.SlackYieldButNotToMe,
		Slack:          10 * vclock.Millisecond,
		Targets:        12,
		ProduceCost:    800 * vclock.Microsecond,
		BufferPriority: sim.PriorityHigh,
		ImagePriority:  sim.PriorityLow,
	}
}

// BufferThread is the slack process: it accumulates paint requests,
// merges overlapping ones and flushes them to the server.
type BufferThread struct {
	thread  *sim.Thread
	in, out int
}

// In returns requests gathered; Out returns requests actually sent.
func (b *BufferThread) In() int { return b.in }

// Out returns the number of requests sent after merging.
func (b *BufferThread) Out() int { return b.out }

// StartPipeline builds the §5.2 pipeline on w and starts both threads.
// The imaging thread produces until Stop (or forever).
func StartPipeline(w *sim.World, reg *paradigm.Registry, srv *Server, cfg PipelineConfig) *Pipeline {
	p := &Pipeline{W: w, Server: srv, Buffer: &BufferThread{}}
	queue := paradigm.NewBuffer(w, "paint-queue", 0)

	reg.Register(paradigm.KindSlackProcess)
	p.Buffer.thread = w.Spawn("buffer-thread", cfg.BufferPriority, func(t *sim.Thread) any {
		for {
			first, ok := queue.Get(t)
			if !ok {
				return nil
			}
			batch := []PaintRequest{first.(PaintRequest)}

			switch cfg.Strategy {
			case paradigm.SlackYield:
				// §5.2's bug: the scheduler chooses the (higher
				// priority) buffer thread right back, so nothing
				// accumulates and no merging occurs.
				t.Yield()
			case paradigm.SlackYieldButNotToMe:
				// The fix: cede the processor until the end of the
				// timeslice; the quantum clocks the batches (§6.3).
				t.YieldButNotToMe()
			case paradigm.SlackSleep:
				t.Sleep(cfg.Slack)
			}

			for {
				item, ok := queue.TryGet(t)
				if !ok {
					break
				}
				batch = append(batch, item.(PaintRequest))
			}
			p.Buffer.in += len(batch)
			srv.ObserveBatch(t.Now(), batch)
			merged := MergeRequests(batch)
			p.Buffer.out += len(merged)
			srv.Flush(t, merged)
		}
	})

	reg.Register(paradigm.KindGeneralPump)
	w.Spawn("imaging-thread", cfg.ImagePriority, func(t *sim.Thread) any {
		for !p.stopped {
			t.Compute(cfg.ProduceCost)
			req := PaintRequest{
				Target: p.produced % cfg.Targets,
				Seq:    p.produced,
				Born:   t.Now(),
			}
			p.produced++
			queue.Put(t, req)
		}
		queue.Close(t)
		return p.produced
	}).Detach()

	return p
}

// Stop halts the imaging thread at its next iteration.
func (p *Pipeline) Stop() { p.stopped = true }

// Produced returns the number of paint requests the imaging thread has
// generated — the §5.2 figure of merit ("the image thread gets much more
// processor resource over the same time interval").
func (p *Pipeline) Produced() int { return p.produced }

// MergeRatio returns gathered/sent (1.0 means no merging happened).
func (p *Pipeline) MergeRatio() float64 {
	if p.Buffer.out == 0 {
		return 0
	}
	return float64(p.Buffer.in) / float64(p.Buffer.out)
}

// PipelineResult summarizes one pipeline run for the experiment tables.
type PipelineResult struct {
	Strategy    paradigm.WaitStrategy
	Quantum     vclock.Duration
	Produced    int
	Flushes     int
	Requests    int
	MergeRatio  float64
	MaxPaintGap vclock.Duration
	MeanLatency vclock.Duration
}

// RunPipeline runs the pipeline for the given virtual duration on a fresh
// world and returns the summary.
func RunPipeline(cfg PipelineConfig, quantum vclock.Duration, seed int64, dur vclock.Duration) PipelineResult {
	w := sim.NewWorld(sim.Config{Quantum: quantum, Seed: seed, Hooks: cfg.Hooks})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	srv := NewServer(w)
	p := StartPipeline(w, reg, srv, cfg)
	w.Run(vclock.Time(0).Add(dur))
	return PipelineResult{
		Strategy:    cfg.Strategy,
		Quantum:     quantum,
		Produced:    p.Produced(),
		Flushes:     srv.Flushes(),
		Requests:    srv.Requests(),
		MergeRatio:  p.MergeRatio(),
		MaxPaintGap: srv.MaxPaintGap(),
		MeanLatency: srv.MeanLatency(),
	}
}
