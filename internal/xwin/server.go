// Package xwin models the X window system substrate of the paper's
// hardest case study: the §5.2 slack process that batches paint requests
// to the X server, whose performance turned out to be clocked by the
// scheduling quantum (§6.3), and the two multi-threaded client libraries
// of §5.6 (a thread-safe Xlib versus Xl's dedicated reading thread).
//
// The X server itself is a separate Unix process reached through a
// socket. Sending it work steals the processor from the client world —
// the paper's "much more work done by the X server than should be
// necessary" — so a flush charges the flushing thread the transaction
// overhead plus per-request processing, and the experiment's figure of
// merit is how much CPU is left for the imaging thread.
package xwin

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

// PaintRequest is one graphics request. Requests targeting the same
// window region (Target) supersede each other: merging keeps only the
// latest — "replacing earlier data with later data" (§4.2).
type PaintRequest struct {
	Target int         // window region; requests on one target merge
	Seq    int         // production sequence number
	Born   vclock.Time // when the imaging thread produced it
}

// Server models the X server process on the other end of a socket.
type Server struct {
	w *sim.World

	// FlushCost is the per-transaction overhead of waking the server
	// process (write syscall, process switch, dispatch).
	FlushCost vclock.Duration
	// RequestCost is the server's processing cost per request.
	RequestCost vclock.Duration

	flushes   int
	requests  int
	lastPaint vclock.Time
	maxGap    vclock.Duration // longest interval between paints (burstiness)
	latency   vclock.Duration // summed production-to-paint latency
	observed  int
}

// NewServer returns a server with the calibrated default costs.
func NewServer(w *sim.World) *Server {
	return &Server{
		w:           w,
		FlushCost:   1800 * vclock.Microsecond,
		RequestCost: 300 * vclock.Microsecond,
	}
}

// Flush sends a batch of requests. The calling thread is charged the
// transaction overhead and the server's processing time (the server
// process takes the processor away from the thread world).
func (s *Server) Flush(t *sim.Thread, batch []PaintRequest) {
	if len(batch) == 0 {
		return
	}
	t.Compute(s.FlushCost + vclock.Duration(len(batch))*s.RequestCost)
	now := s.w.Now()
	if s.flushes > 0 {
		if gap := now.Sub(s.lastPaint); gap > s.maxGap {
			s.maxGap = gap
		}
	}
	s.lastPaint = now
	s.flushes++
	s.requests += len(batch)
}

// ObserveBatch records the production-to-paint latency of every gathered
// request — including the ones merging will drop, since the user has been
// waiting on those paints too.
func (s *Server) ObserveBatch(now vclock.Time, batch []PaintRequest) {
	for _, r := range batch {
		s.latency += now.Sub(r.Born)
		s.observed++
	}
}

// Flushes returns the number of transactions sent so far.
func (s *Server) Flushes() int { return s.flushes }

// Requests returns the number of requests the server has processed.
func (s *Server) Requests() int { return s.requests }

// MaxPaintGap returns the longest interval between successive paints —
// the §6.3 burstiness measure (a 1-second quantum buffers events "for one
// second ... and the user would observe very bursty screen painting").
func (s *Server) MaxPaintGap() vclock.Duration { return s.maxGap }

// MeanLatency returns the average production-to-paint latency.
func (s *Server) MeanLatency() vclock.Duration {
	if s.observed == 0 {
		return 0
	}
	return s.latency / vclock.Duration(s.observed)
}

// MergeRequests reduces a batch to the newest request per target.
func MergeRequests(batch []PaintRequest) []PaintRequest {
	latest := make(map[int]PaintRequest, len(batch))
	for _, r := range batch {
		if have, ok := latest[r.Target]; !ok || r.Seq > have.Seq {
			latest[r.Target] = r
		}
	}
	out := batch[:0]
	for _, r := range batch {
		if latest[r.Target].Seq == r.Seq {
			out = append(out, r)
		}
	}
	return out
}
