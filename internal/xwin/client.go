package xwin

import (
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// XEvent is one input event arriving from the X server.
type XEvent struct {
	Seq       int
	Delivered vclock.Time
}

// Conn models the bidirectional X connection: input events pushed by the
// server (driver context), output requests buffered by the client and
// written by explicit or forced flushes.
type Conn struct {
	w      *sim.World
	events []XEvent
	reader *sim.Thread

	// output batching accounting
	pendingOut   int
	flushes      int
	flushedReqs  int
	emptyFlushes int

	// WriteCost is the syscall cost of one output flush.
	WriteCost vclock.Duration
	// ReadCost is the syscall cost of one (successful or timed-out) read.
	ReadCost vclock.Duration
}

// NewConn returns a connection with default syscall costs.
func NewConn(w *sim.World) *Conn {
	return &Conn{
		w:         w,
		WriteCost: 400 * vclock.Microsecond,
		ReadCost:  150 * vclock.Microsecond,
	}
}

// Deliver pushes an input event from the server (driver context).
func (c *Conn) Deliver(seq int) {
	c.events = append(c.events, XEvent{Seq: seq, Delivered: c.w.Now()})
	if c.reader != nil {
		r := c.reader
		c.reader = nil
		c.w.WakeIfBlocked(r, nil)
	}
}

// QueueOutput buffers n output requests for a later flush.
func (c *Conn) QueueOutput(n int) { c.pendingOut += n }

// FlushOutput writes the buffered output requests. Empty flushes still
// pay the syscall; the Xlib model's forced flush-before-read makes many
// of them.
func (c *Conn) FlushOutput(t *sim.Thread) {
	t.Compute(c.WriteCost)
	c.flushes++
	if c.pendingOut == 0 {
		c.emptyFlushes++
		return
	}
	c.flushedReqs += c.pendingOut
	c.pendingOut = 0
}

// Flushes returns the number of output flush syscalls performed.
func (c *Conn) Flushes() int { return c.flushes }

// EmptyFlushes returns flushes that carried no requests.
func (c *Conn) EmptyFlushes() int { return c.emptyFlushes }

// MeanBatch returns the average requests per non-empty flush — the
// batching throughput the forced flushes defeat.
func (c *Conn) MeanBatch() float64 {
	nonEmpty := c.flushes - c.emptyFlushes
	if nonEmpty == 0 {
		return 0
	}
	return float64(c.flushedReqs) / float64(nonEmpty)
}

// Read blocks until an input event arrives or timeout elapses (exact, an
// OS-level wait). Only one thread may be in Read at a time — which is the
// whole §5.6 problem for the Xlib model.
func (c *Conn) Read(t *sim.Thread, timeout vclock.Duration) (XEvent, bool) {
	t.Compute(c.ReadCost)
	if len(c.events) == 0 {
		if c.reader != nil {
			panic("xwin: concurrent readers on one connection")
		}
		c.reader = t
		if timeout > 0 {
			t.BlockTimedExact(sim.BlockCV, timeout)
		} else {
			t.Block(sim.BlockCV)
		}
		if c.reader == t {
			c.reader = nil // timed out; deregister
		}
	}
	if len(c.events) == 0 {
		return XEvent{}, false
	}
	ev := c.events[0]
	c.events = c.events[1:]
	return ev, true
}

// Client is the common interface of the two §5.6 client libraries.
type Client interface {
	// GetEvent returns the next input event, honoring the client's
	// timeout; ok=false on timeout.
	GetEvent(t *sim.Thread, timeout vclock.Duration) (XEvent, bool)
	// QueueOutput buffers paint requests through the library.
	QueueOutput(t *sim.Thread, n int)
}

// XlibClient is the "Xlib, modified only to make it thread-safe" model: a
// library monitor serializes everything, any client thread performs the
// read while holding that monitor, and — because others can neither enter
// nor time out while it blocks — each read must use a short timeout and
// the X-spec flush-before-read runs over and over, defeating batching.
type XlibClient struct {
	conn *Conn
	m    *monitor.Monitor
	// ReadSlice is the short read timeout that keeps the library mutex
	// from being held indefinitely.
	ReadSlice vclock.Duration

	// MaxEnterDelay records the worst mutex-acquisition delay observed by
	// GetEvent callers — the §5.6 priority-inversion window.
	MaxEnterDelay vclock.Duration
}

// NewXlibClient wraps conn in the locked-library model.
func NewXlibClient(w *sim.World, reg *paradigm.Registry, conn *Conn) *XlibClient {
	reg.Register(paradigm.KindUnknown) // a lock, not a thread paradigm
	return &XlibClient{
		conn:      conn,
		m:         monitor.New(w, "xlib"),
		ReadSlice: 20 * vclock.Millisecond,
	}
}

func (x *XlibClient) enter(t *sim.Thread) {
	start := t.Now()
	x.m.Enter(t)
	if d := t.Now().Sub(start); d > x.MaxEnterDelay {
		x.MaxEnterDelay = d
	}
}

// GetEvent implements Client. Each poll flushes the output queue (the X
// spec requires it before a read) and reads with the short timeout while
// holding the library mutex.
func (x *XlibClient) GetEvent(t *sim.Thread, timeout vclock.Duration) (XEvent, bool) {
	deadline := t.Now().Add(timeout)
	for {
		x.enter(t)
		// "The X specification requires that the output queue be flushed
		// whenever a read is done on the input stream."
		x.conn.FlushOutput(t)
		ev, ok := x.conn.Read(t, x.ReadSlice)
		x.m.Exit(t)
		if ok {
			return ev, true
		}
		if t.Now() >= deadline {
			return XEvent{}, false
		}
	}
}

// QueueOutput implements Client (under the library mutex, like all Xlib
// calls).
func (x *XlibClient) QueueOutput(t *sim.Thread, n int) {
	x.enter(t)
	x.conn.QueueOutput(n)
	x.m.Exit(t)
}

// XlClient is the "designed from scratch with multi-threading in mind"
// model: a dedicated serializing reader thread owns the connection's
// input side and blocks indefinitely; clients wait on a condition
// variable whose timeout mechanism handles their GetEvent timeouts
// "perfectly"; output is flushed explicitly (or by a periodic maintenance
// thread), never forced by reads.
type XlClient struct {
	conn    *Conn
	m       *monitor.Monitor
	arrived *monitor.Cond
	queue   []XEvent
	reader  *sim.Thread
	// MaxEnterDelay mirrors XlibClient's inversion measure; with the
	// reader thread it stays tiny ("priority inversion can only occur
	// during the short time period when a low-priority thread checks to
	// see if there are events on the input queue").
	MaxEnterDelay vclock.Duration
}

// NewXlClient wraps conn in the reading-thread model and forks the reader
// (a serializer, §4.6) plus a periodic output-flushing maintenance thread
// (a sleeper).
func NewXlClient(w *sim.World, reg *paradigm.Registry, conn *Conn, flushEvery vclock.Duration) *XlClient {
	x := &XlClient{conn: conn}
	x.m = monitor.New(w, "xl")
	x.arrived = x.m.NewCond("xl.arrived")

	reg.Register(paradigm.KindSerializer)
	x.reader = w.Spawn("xl-reader", sim.PriorityHigh, func(t *sim.Thread) any {
		for {
			ev, ok := conn.Read(t, 0) // block indefinitely
			if !ok {
				return nil
			}
			x.m.Enter(t)
			x.queue = append(x.queue, ev)
			x.arrived.Notify(t)
			x.m.Exit(t)
		}
	})

	// "Other mechanisms such as ... a periodic timeout by a maintenance
	// thread ensure that output gets flushed in a timely manner."
	paradigm.StartSleeper(w, reg, "xl-flusher", sim.PriorityNormal, flushEvery, func(t *sim.Thread) {
		x.m.Enter(t)
		if conn.pendingOut > 0 {
			conn.FlushOutput(t)
		}
		x.m.Exit(t)
	})
	return x
}

func (x *XlClient) enter(t *sim.Thread) {
	start := t.Now()
	x.m.Enter(t)
	if d := t.Now().Sub(start); d > x.MaxEnterDelay {
		x.MaxEnterDelay = d
	}
}

// GetEvent implements Client: a CV wait with the client's own timeout.
func (x *XlClient) GetEvent(t *sim.Thread, timeout vclock.Duration) (XEvent, bool) {
	x.enter(t)
	defer x.m.Exit(t)
	x.arrived.SetTimeout(timeout)
	deadline := t.Now().Add(timeout)
	for len(x.queue) == 0 {
		if x.arrived.Wait(t) && t.Now() >= deadline {
			return XEvent{}, false
		}
	}
	ev := x.queue[0]
	x.queue = x.queue[1:]
	return ev, true
}

// QueueOutput implements Client.
func (x *XlClient) QueueOutput(t *sim.Thread, n int) {
	x.enter(t)
	x.conn.QueueOutput(n)
	x.m.Exit(t)
}
