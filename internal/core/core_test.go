package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFacadeEndToEnd drives the whole stack through the public facade:
// world, monitor, CV, trace capture, analysis.
func TestFacadeEndToEnd(t *testing.T) {
	var buf core.TraceBuffer
	w := core.NewWorld(core.WorldConfig{Seed: 42, Trace: &buf})
	defer w.Shutdown()

	mu := core.NewMonitor(w, "queue")
	nonEmpty := mu.NewCond("non-empty")
	var queue []string
	var got string

	w.Spawn("consumer", core.PriorityNormal, func(th *core.Thread) any {
		mu.Enter(th)
		for len(queue) == 0 {
			nonEmpty.Wait(th)
		}
		got = queue[0]
		queue = queue[1:]
		mu.Exit(th)
		return nil
	})
	// Spawned second at equal priority: runs after the consumer waits.
	w.Spawn("producer", core.PriorityNormal, func(th *core.Thread) any {
		th.Compute(10 * core.Millisecond)
		mu.Enter(th)
		queue = append(queue, "payload")
		nonEmpty.Notify(th)
		mu.Exit(th)
		return nil
	})
	w.Run(core.At(core.Second))

	if got != "payload" {
		t.Fatalf("consumer got %q", got)
	}
	a := core.Analyze(buf.Events, 0, core.At(core.Second))
	if a.MLEnters < 3 || a.WaitDones != 1 || a.Notifies != 1 {
		t.Fatalf("analysis wrong: enters=%d dones=%d notifies=%d", a.MLEnters, a.WaitDones, a.Notifies)
	}
}

func TestExperimentsListing(t *testing.T) {
	exps := core.Experiments()
	if len(exps) != 19 { // T1-T4 + F1-F12 + R1-R3
		t.Fatalf("experiments = %d, want 19", len(exps))
	}
	for _, id := range []string{"T1", "T4", "F5", "F11", "R1", "R3"} {
		if exps[id] == "" {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	r, err := core.RunExperiment("F5", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "F5" || len(r.Tables) == 0 {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "Spurious") {
		t.Fatalf("report text missing title:\n%s", r.String())
	}
	if _, err := core.RunExperiment("nope", true, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestBenchmarksListing(t *testing.T) {
	bs := core.Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("benchmarks = %d, want 12", len(bs))
	}
	found := false
	for _, b := range bs {
		if b == "Cedar/Idle Cedar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing Cedar/Idle Cedar in %v", bs)
	}
}

func TestRegistryFacade(t *testing.T) {
	reg := core.NewRegistry()
	if reg.Total() != 0 {
		t.Fatal("fresh registry should be empty")
	}
}
