// Package core is the top-level facade of the reproduction: one import
// that exposes the PCR-like thread kernel (package sim), Mesa monitors
// and condition variables (package monitor), the ten thread-usage
// paradigms with their Table 4 census (package paradigm), the Cedar/GVX
// workload models (package workload), and the paper's experiments
// (package experiments).
//
// A minimal program:
//
//	w := core.NewWorld(core.WorldConfig{})
//	defer w.Shutdown()
//	w.Spawn("hello", core.PriorityNormal, func(t *core.Thread) any {
//		t.Compute(10 * core.Millisecond)
//		return nil
//	})
//	w.Run(core.At(1 * core.Second))
package core

import (
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Re-exported kernel types.
type (
	// World is a simulated PCR instance (see sim.World).
	World = sim.World
	// Thread is a simulated PCR thread (see sim.Thread).
	Thread = sim.Thread
	// WorldConfig parameterizes a World (see sim.Config).
	WorldConfig = sim.Config
	// Priority is a PCR thread priority, 1..7.
	Priority = sim.Priority
	// Proc is a thread body.
	Proc = sim.Proc

	// Monitor is a Mesa monitor lock.
	Monitor = monitor.Monitor
	// Cond is a Mesa condition variable.
	Cond = monitor.Cond
	// MonitorOptions tunes monitor costs and the §6.1/§6.2 options.
	MonitorOptions = monitor.Options

	// Registry is the paradigm census behind Table 4.
	Registry = paradigm.Registry

	// Time is a virtual instant; Duration a virtual span.
	Time = vclock.Time
	// Duration is a span of virtual time.
	Duration = vclock.Duration

	// TraceEvent is one microsecond-stamped thread event.
	TraceEvent = trace.Event
	// TraceBuffer captures a full event stream.
	TraceBuffer = trace.Buffer

	// Analysis digests a trace into the paper's metrics.
	Analysis = stats.Analysis

	// Report is one regenerated table/figure.
	Report = experiments.Report
)

// Re-exported priority levels and time units.
const (
	PriorityMin        = sim.PriorityMin
	PriorityBackground = sim.PriorityBackground
	PriorityLow        = sim.PriorityLow
	PriorityNormal     = sim.PriorityNormal
	PriorityHigh       = sim.PriorityHigh
	PriorityDaemon     = sim.PriorityDaemon
	PriorityInterrupt  = sim.PriorityInterrupt

	Microsecond = vclock.Microsecond
	Millisecond = vclock.Millisecond
	Second      = vclock.Second
	Minute      = vclock.Minute
)

// NewWorld creates a simulated PCR world.
func NewWorld(cfg WorldConfig) *World { return sim.NewWorld(cfg) }

// NewMonitor creates a Mesa monitor with default options.
func NewMonitor(w *World, name string) *Monitor { return monitor.New(w, name) }

// NewRegistry creates an empty paradigm census.
func NewRegistry() *Registry { return paradigm.NewRegistry() }

// At converts a duration-from-epoch into an absolute virtual time, for
// World.Run horizons: w.Run(core.At(30 * core.Second)).
func At(d Duration) Time { return Time(0).Add(d) }

// Analyze digests captured trace events over [from, to].
func Analyze(events []TraceEvent, from, to Time) *Analysis {
	return stats.Analyze(events, from, to)
}

// Experiments returns the IDs and titles of every regenerable table and
// figure (T1..T4, F1..F8).
func Experiments() map[string]string {
	out := make(map[string]string)
	for _, e := range experiments.All() {
		out[e.ID] = e.Title
	}
	return out
}

// RunExperiment regenerates one of the paper's tables or figures by ID.
// quick shortens the measurement windows about threefold.
func RunExperiment(id string, quick bool, seed int64) (*Report, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.Config{Quick: quick, Seed: seed}), nil
}

// Benchmarks lists the twelve Table 1–3 benchmarks as "System/Name".
func Benchmarks() []string {
	var out []string
	for _, b := range workload.AllBenchmarks() {
		out = append(out, b.System+"/"+b.Name)
	}
	return out
}
