package workload

import (
	"fmt"
	"testing"

	"repro/internal/vclock"
)

// TestCalibrationReport prints measured vs paper values for all twelve
// benchmarks. Run with -v to see the table; it never fails — the
// assertions live in workload_test.go. Shorten the window with -short.
func TestCalibrationReport(t *testing.T) {
	rc := DefaultRunConfig()
	if testing.Short() {
		rc.Window = 10 * vclock.Second
	}
	fmt.Printf("%-22s %-6s | %7s %7s | %7s %7s | %7s %7s | %5s %5s | %7s %7s | %5s %5s | %5s %5s\n",
		"benchmark", "sys", "forks", "paper", "switch", "paper", "waits", "paper", "%TO", "paper", "ML/s", "paper", "#CV", "paper", "#ML", "paper")
	for _, b := range AllBenchmarks() {
		r := Run(b, rc)
		a := r.Analysis
		fmt.Printf("%-22s %-6s | %7.1f %7.1f | %7.0f %7.0f | %7.0f %7.0f | %4.0f%% %4.0f%% | %7.0f %7.0f | %5d %5d | %5d %5d\n",
			b.Name, b.System,
			a.ForksPerSec(), b.PaperForks,
			a.SwitchesPerSec(), b.PaperSwitches,
			a.WaitsPerSec(), b.PaperWaits,
			100*a.TimeoutFraction(), 100*b.PaperTimeout,
			a.MLEntersPerSec(), b.PaperMLEnters,
			a.DistinctCVs, b.PaperCVs,
			a.DistinctMLs, b.PaperMLs)
	}
}
