package workload

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
	"repro/internal/workload/spec"
)

// These tests pin the API-redesign bridge: a workload compiled from its
// spec document through StartSpec must reproduce the hand-parameterised
// generator run event-for-event. EventsProcessed counts every scheduling
// decision the world made, so equality there plus equal load stats is
// byte-identity for everything the experiments report.

// quickShipped returns a shipped W-series spec scaled to test size.
func quickShipped(t *testing.T, name string, scale func(*spec.Spec)) *spec.Spec {
	t.Helper()
	sp, err := spec.Shipped(name)
	if err != nil {
		t.Fatal(err)
	}
	scale(sp)
	if err := sp.Check(); err != nil {
		t.Fatalf("scaled %s spec invalid: %v", name, err)
	}
	return sp
}

// runSpec compiles and drives one spec, returning the world's event
// count and the run's aggregate stats rendering.
func runSpec(t *testing.T, sp *spec.Spec, seed int64, opts SpecOptions) (int64, string) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: seed, SystemDaemon: sp.SystemDaemon})
	defer w.Shutdown()
	run, err := StartSpec(w, sp, opts)
	if err != nil {
		t.Fatalf("StartSpec(%s): %v", sp.Name, err)
	}
	w.Run(vclock.Time(0).Add(run.Horizon))
	if run.SLO != nil {
		s := run.SLO.Finish()
		var b strings.Builder
		fmt.Fprintf(&b, "threads=%d", s.Threads)
		for _, class := range s.Classes() {
			fmt.Fprintf(&b, " %s[off=%d done=%d ontime=%d lat=%s]",
				class, s.Offered[class], s.Completed[class], s.OnTime[class],
				s.Latency.Class(class).String())
		}
		return w.EventsProcessed(), b.String()
	}
	return w.EventsProcessed(), run.Load().String()
}

func TestSpecBridgeEcho(t *testing.T) {
	sp := quickShipped(t, "w1", func(s *spec.Spec) {
		s.Cohorts[0].Sessions = 200
		s.Cohorts[0].Requests = 2000
	})
	c := sp.Cohorts[0]
	w := sim.NewWorld(sim.Config{Seed: 3})
	defer w.Shutdown()
	e := StartEcho(w, EchoParams{
		Sessions: c.Sessions, Requests: c.Requests, Rate: c.Arrival.Rate,
		Service: c.ServiceMean(), Priority: c.SimPriority(),
	})
	w.Run(vclock.Time(0).Add(sp.Horizon()))
	directEvents, directStats := w.EventsProcessed(), e.Finish().String()

	specEvents, specStats := runSpec(t, sp, 3, SpecOptions{})
	if specEvents != directEvents || specStats != directStats {
		t.Errorf("spec-compiled W1 diverged from StartEcho:\n spec:   %d events, %s\n direct: %d events, %s",
			specEvents, specStats, directEvents, directStats)
	}
}

func TestSpecBridgePipeline(t *testing.T) {
	sp := quickShipped(t, "w2", func(s *spec.Spec) {
		s.Pipeline.Pipelines = 8
		s.Pipeline.Requests = 1000
	})
	p := sp.Pipeline
	w := sim.NewWorld(sim.Config{Seed: 3})
	defer w.Shutdown()
	pl := StartPipeline(w, PipelineParams{
		Pipelines: p.Pipelines, Stages: p.Stages, Buffer: p.Buffer,
		Requests: p.Requests, Rate: p.Rate, StageCost: vclock.Duration(p.StageCostUS),
	})
	w.Run(vclock.Time(0).Add(sp.Horizon()))
	directEvents, directStats := w.EventsProcessed(), pl.Finish().String()

	specEvents, specStats := runSpec(t, sp, 3, SpecOptions{})
	if specEvents != directEvents || specStats != directStats {
		t.Errorf("spec-compiled W2 diverged from StartPipeline:\n spec:   %d events, %s\n direct: %d events, %s",
			specEvents, specStats, directEvents, directStats)
	}
}

func TestSpecBridgeMixed(t *testing.T) {
	sp := quickShipped(t, "w3", func(s *spec.Spec) {
		s.Cohorts[0].Sessions = 64
		s.Cohorts[0].Requests = 4000
		s.Batch.Workers = 8
		s.HorizonUS = (5 * vclock.Second).Micros()
	})
	c := sp.Cohorts[0]
	w := sim.NewWorld(sim.Config{Seed: 3, SystemDaemon: sp.SystemDaemon})
	defer w.Shutdown()
	m := StartMixed(w, MixedParams{
		Interactive: c.Sessions, Batch: sp.Batch.Workers,
		Requests: c.Requests, Rate: c.Arrival.Rate, Service: c.ServiceMean(),
		BatchChunk: vclock.Duration(sp.Batch.ChunkUS), Horizon: sp.Horizon(),
	})
	w.Run(vclock.Time(0).Add(sp.Horizon()))
	directEvents := w.EventsProcessed()
	directStats := m.Finish().String()
	directChunks := m.BatchChunks

	w2 := sim.NewWorld(sim.Config{Seed: 3, SystemDaemon: sp.SystemDaemon})
	defer w2.Shutdown()
	run, err := StartSpec(w2, sp, SpecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Run(vclock.Time(0).Add(run.Horizon))
	if got, want := w2.EventsProcessed(), directEvents; got != want {
		t.Errorf("spec-compiled W3 event count %d != direct %d", got, want)
	}
	if got, want := run.Load().String(), directStats; got != want {
		t.Errorf("spec-compiled W3 stats diverged:\n spec:   %s\n direct: %s", got, want)
	}
	if run.Mixed.BatchChunks != directChunks {
		t.Errorf("spec-compiled W3 batch chunks %d != direct %d", run.Mixed.BatchChunks, directChunks)
	}
}

// specsUnderTest returns one spec per replayable kind, test-sized.
func specsUnderTest(t *testing.T) []*spec.Spec {
	t.Helper()
	return []*spec.Spec{
		quickShipped(t, "w1", func(s *spec.Spec) {
			s.Cohorts[0].Sessions = 100
			s.Cohorts[0].Requests = 1000
		}),
		quickShipped(t, "w2", func(s *spec.Spec) {
			s.Pipeline.Pipelines = 4
			s.Pipeline.Requests = 400
		}),
		quickShipped(t, "w3", func(s *spec.Spec) {
			s.Cohorts[0].Sessions = 32
			s.Cohorts[0].Requests = 1500
			s.Batch.Workers = 4
			s.HorizonUS = (2 * vclock.Second).Micros()
		}),
		{Schema: spec.Schema, Name: "slo-mix", Kind: spec.KindSLO,
			Cohorts: []spec.Cohort{
				{Name: "fast", Sessions: 8, Requests: 800,
					Arrival:  &spec.Arrival{Process: spec.ProcPoisson, Rate: 400},
					Service:  &spec.Service{Dist: spec.DistConst, MeanUS: 500},
					Priority: "high", SLOUS: 20_000},
				{Name: "slow", Sessions: 4, Requests: 200,
					Arrival: &spec.Arrival{Process: spec.ProcPoisson, Rate: 100},
					Service: &spec.Service{Dist: spec.DistConst, MeanUS: 2000},
					SLOUS:   100_000},
			},
			Batch:     &spec.Batch{Workers: 2, ChunkUS: 1000, SLOUS: 50_000},
			HorizonUS: (3 * vclock.Second).Micros()},
		{Schema: spec.Schema, Name: "general", Kind: spec.KindCohorts,
			Cohorts: []spec.Cohort{
				{Name: "bursty", Sessions: 16, Requests: 2000,
					Arrival: &spec.Arrival{Process: spec.ProcGamma, Rate: 1500, Shape: 0.5},
					Service: &spec.Service{Dist: spec.DistExp, MeanUS: 120},
					Modulation: []spec.Window{
						{FromUS: 0, ToUS: 400_000, Factor: 0.5},
						{FromUS: 400_000, ToUS: 900_000, Factor: 2},
					}},
				{Name: "heavy", Sessions: 4, Requests: 150,
					Arrival: &spec.Arrival{Process: spec.ProcWeibull, Rate: 100, Shape: 1.5},
					Service: &spec.Service{Dist: spec.DistPareto, MeanUS: 3000, Alpha: 2.5},
					SLOUS:   80_000},
			},
			HorizonUS: (4 * vclock.Second).Micros()},
	}
}

// TestRecordReplayRoundTrip is the trace contract, per kind: a recorded
// run replayed — even in a world seeded differently — reproduces the
// same event sequence and stats, and re-recording the replay reproduces
// the trace byte-for-byte.
func TestRecordReplayRoundTrip(t *testing.T) {
	for _, sp := range specsUnderTest(t) {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			rec := spec.NewTrace(sp.Name, 3)
			liveEvents, liveStats := runSpec(t, sp, 3, SpecOptions{Record: rec})
			if len(rec.Entries) == 0 {
				t.Fatal("recorded no entries")
			}

			// Same seed, replayed: identical world, identical trace.
			rerec := spec.NewTrace(sp.Name, 3)
			replayEvents, replayStats := runSpec(t, sp, 3, SpecOptions{Replay: rec, Record: rerec})
			if replayEvents != liveEvents || replayStats != liveStats {
				t.Errorf("replay diverged from the recorded run:\n live:   %d events, %s\n replay: %d events, %s",
					liveEvents, liveStats, replayEvents, replayStats)
			}
			if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
				t.Errorf("re-recorded trace differs from the original")
			}

			// A different world seed must not matter: the trace, not the
			// RNG, owns arrivals, sessions and demands.
			rerec2 := spec.NewTrace(sp.Name, 3)
			if _, stats := runSpec(t, sp, 99, SpecOptions{Replay: rec, Record: rerec2}); stats != liveStats {
				t.Errorf("replay under seed 99 moved the stats:\n live:   %s\n replay: %s", liveStats, stats)
			}
			if !bytes.Equal(rec.Bytes(), rerec2.Bytes()) {
				t.Errorf("re-recorded trace under seed 99 differs from the original")
			}
		})
	}
}

// TestStartSpecRejects covers the construction sentinel: every invalid
// spec or trace fails with spec.ErrInvalidSpec and a usable message.
func TestStartSpecRejects(t *testing.T) {
	valid := func() *spec.Spec {
		return &spec.Spec{Schema: spec.Schema, Name: "v", Kind: spec.KindCohorts,
			Cohorts: []spec.Cohort{{Name: "a", Sessions: 2, Requests: 10,
				Arrival: &spec.Arrival{Process: spec.ProcPoisson, Rate: 100},
				Service: &spec.Service{Dist: spec.DistConst, MeanUS: 5}}},
			HorizonUS: 1_000_000}
	}
	tamper := func(mutate func(*spec.Spec)) *spec.Spec {
		s := valid()
		mutate(s)
		return s
	}
	withTrace := func(entries ...spec.Entry) SpecOptions {
		tr := spec.NewTrace("v", 1)
		tr.Entries = entries
		return SpecOptions{Replay: tr}
	}
	cases := []struct {
		name string
		sp   *spec.Spec
		opts SpecOptions
	}{
		{"invalid spec", tamper(func(s *spec.Spec) { s.Cohorts[0].Arrival.Rate = -1 }), SpecOptions{}},
		{"duplicate cohorts", tamper(func(s *spec.Spec) {
			s.Cohorts = append(s.Cohorts, s.Cohorts[0])
		}), SpecOptions{}},
		{"unknown background", tamper(func(s *spec.Spec) { s.Background = "vax" }), SpecOptions{}},
		{"trace names unknown cohort", valid(),
			withTrace(spec.Entry{AtUS: 1, Cohort: "b", Session: 0, ServiceUS: 5})},
		{"trace session out of pool", valid(),
			withTrace(spec.Entry{AtUS: 1, Cohort: "a", Session: 2, ServiceUS: 5})},
		{"trace arrivals not increasing", valid(),
			withTrace(
				spec.Entry{AtUS: 5, Cohort: "a", Session: 0, ServiceUS: 5},
				spec.Entry{AtUS: 5, Cohort: "a", Session: 1, ServiceUS: 5})},
		{"trace missing a cohort", valid(), withTrace()},
		{"server kind replay", &spec.Spec{Schema: spec.Schema, Name: "srv", Kind: spec.KindServer,
			Cohorts: []spec.Cohort{{Name: "s", Sessions: 2}}},
			withTrace(spec.Entry{AtUS: 1, Cohort: "s", Session: 0, ServiceUS: 5})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := sim.NewWorld(sim.Config{Seed: 1})
			defer w.Shutdown()
			_, err := StartSpec(w, tc.sp, tc.opts)
			if err == nil {
				t.Fatalf("StartSpec accepted")
			}
			if !errors.Is(err, spec.ErrInvalidSpec) {
				t.Errorf("error does not wrap ErrInvalidSpec: %v", err)
			}
		})
	}
}
