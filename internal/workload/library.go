// Package workload models the two systems the paper measured — Cedar and
// GVX — as populations of the thread paradigms the paper itself says the
// systems are made of: eternal sleepers, pumps, serializers, a
// high-priority Notifier, work-deferring forks, and the benchmark
// activities of Tables 1–3 (keyboard, mouse, scrolling, document
// formatting and previewing, make, compile).
//
// The models are parameterized and tuned to the paper's reported
// operating points. The calibration targets and the knobs are honest
// modeling choices, not measurements: what the reproduction claims is the
// *shape* — idle vs. busy contrasts, Cedar vs. GVX contrasts, the
// timeout-dominated wait mix, the monitor-entry scale — not the authors'
// absolute SPARCstation numbers.
package workload

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Library models the monitored modules of a multi-million-line system:
// a pool of monitors that threads enter briefly as they call through
// layers of reusable packages. Table 3's "number of different MLs"
// counts how much of this pool a benchmark visits; §3 notes monitors are
// entered frequently "reflecting their use to protect data structures
// (especially in reusable library packages)" with very low contention.
type Library struct {
	w    *sim.World
	mons []*monitor.Monitor
	// HoldCost is CPU charged inside each touched monitor.
	HoldCost vclock.Duration
}

// NewLibrary creates a pool of n monitors.
func NewLibrary(w *sim.World, name string, n int) *Library {
	l := &Library{w: w, HoldCost: 2 * vclock.Microsecond}
	opt := monitor.Options{DeferNotifyReschedule: true} // PCR shipped the §6.1 fix
	for i := 0; i < n; i++ {
		l.mons = append(l.mons, monitor.NewWithOptions(w, fmt.Sprintf("%s-%d", name, i), opt))
	}
	return l
}

// Size returns the number of monitors in the pool.
func (l *Library) Size() int { return len(l.mons) }

// Region identifies a half-open slice [Lo, Hi) of the library: the
// modules a particular activity calls through.
type Region struct{ Lo, Hi int }

// Span returns the number of monitors in the region.
func (r Region) Span() int { return r.Hi - r.Lo }

// Touch enters and exits k monitors drawn uniformly from the region,
// charging the per-hold cost inside each — one layered call chain.
func (l *Library) Touch(t *sim.Thread, r Region, k int) {
	if r.Lo < 0 || r.Hi > len(l.mons) || r.Lo >= r.Hi {
		panic(fmt.Sprintf("workload: bad region [%d,%d) of %d", r.Lo, r.Hi, len(l.mons)))
	}
	rng := l.w.Rand()
	for i := 0; i < k; i++ {
		m := l.mons[r.Lo+rng.Intn(r.Span())]
		m.Enter(t)
		t.Compute(l.HoldCost)
		m.Exit(t)
	}
}

// TouchOne enters a specific monitor (by pool index), computes hold, and
// exits — used to create deliberate contention points (GVX's window
// monitor under scrolling, §3's 0.4 % contention).
func (l *Library) TouchOne(t *sim.Thread, idx int, hold vclock.Duration) {
	m := l.mons[idx]
	m.Enter(t)
	t.Compute(hold)
	m.Exit(t)
}

// TouchOneIO enters a specific monitor, computes hold, performs io of
// synchronous device I/O while still holding the monitor, and exits.
// Lower-priority threads run during the I/O and contend on the monitor —
// how GVX's shared window monitor shows measurable contention under
// scrolling.
func (l *Library) TouchOneIO(t *sim.Thread, idx int, hold, io vclock.Duration) {
	m := l.mons[idx]
	m.Enter(t)
	t.Compute(hold)
	t.BlockIO(io)
	m.Exit(t)
}
