package workload

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Benchmark is one of the twelve rows of Tables 1–3: a system model plus
// an activity, with the paper's reported numbers attached for comparison.
type Benchmark struct {
	Name   string
	System string // "Cedar" or "GVX"
	// Build constructs the world's population and starts the activity.
	Build func(w *sim.World, reg *paradigm.Registry)

	// Paper-reported values (Tables 1 and 2 and 3), for side-by-side
	// rendering; zero means "not reported".
	PaperForks    float64
	PaperSwitches float64
	PaperWaits    float64
	PaperTimeout  float64 // fraction
	PaperMLEnters float64
	PaperCVs      int
	PaperMLs      int
}

// RunConfig parameterizes a benchmark run.
type RunConfig struct {
	Warmup vclock.Duration // excluded from the measurement window
	Window vclock.Duration // measurement window length
	Seed   int64
	CPUs   int
	Hooks  sim.Hooks // observability seams passed through to sim.Config
}

// DefaultRunConfig measures a 30-second window after 3 seconds of warmup,
// like a steady-state slice of the authors' benchmark sessions.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Warmup: 3 * vclock.Second,
		Window: 30 * vclock.Second,
		Seed:   1,
		CPUs:   1,
	}
}

// Result is one benchmark's measurement.
type Result struct {
	Benchmark Benchmark
	Analysis  *stats.Analysis
	Registry  *paradigm.Registry
}

// Run executes one benchmark and analyzes its trace. The analysis is
// computed online (stats.Collector), so arbitrarily long virtual windows
// stay memory-flat.
func Run(b Benchmark, rc RunConfig) *Result {
	end := vclock.Time(0).Add(rc.Warmup).Add(rc.Window)
	col := stats.NewCollector(vclock.Time(0).Add(rc.Warmup), end)
	w := sim.NewWorld(sim.Config{
		Trace:        col,
		Seed:         rc.Seed,
		CPUs:         rc.CPUs,
		Hooks:        rc.Hooks,
		SystemDaemon: true, // PCR's priority-6 proportional-share daemon
	})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b.Build(w, reg)
	w.Run(end)
	return &Result{
		Benchmark: b,
		Analysis:  col.Finish(w.Now()),
		Registry:  reg,
	}
}

// CedarBenchmarks returns the paper's eight Cedar benchmarks with their
// reported Table 1–3 values.
func CedarBenchmarks() []Benchmark {
	// User-initiated batch tasks suppress the shell-driven idle forking
	// ("user-initiated tasks ... caused thread-forking activity to
	// decrease by more than a factor of 3", §3); the models encode that
	// as a longer — or disabled — idle-fork period while such a task runs.
	cedar := func(idleFork vclock.Duration, activity func(c *Cedar)) func(w *sim.World, reg *paradigm.Registry) {
		return func(w *sim.World, reg *paradigm.Registry) {
			p := DefaultCedarParams()
			p.IdleForkPeriod = idleFork
			c := NewCedar(w, reg, p)
			if activity != nil {
				activity(c)
			}
		}
	}
	idle := 2 * vclock.Second
	return []Benchmark{
		{
			Name: "Idle Cedar", System: "Cedar", Build: cedar(idle, nil),
			PaperForks: 0.9, PaperSwitches: 132, PaperWaits: 121, PaperTimeout: 0.82, PaperMLEnters: 414, PaperCVs: 22, PaperMLs: 554,
		},
		{
			Name: "Keyboard input", System: "Cedar", Build: cedar(idle, func(c *Cedar) { c.StartKeyboard(4.1) }),
			PaperForks: 5.0, PaperSwitches: 269, PaperWaits: 185, PaperTimeout: 0.48, PaperMLEnters: 2557, PaperCVs: 32, PaperMLs: 918,
		},
		{
			Name: "Mouse movement", System: "Cedar", Build: cedar(idle, func(c *Cedar) { c.StartMouse(30) }),
			PaperForks: 1.0, PaperSwitches: 191, PaperWaits: 163, PaperTimeout: 0.58, PaperMLEnters: 1025, PaperCVs: 26, PaperMLs: 734,
		},
		{
			Name: "Window scrolling", System: "Cedar", Build: cedar(8*vclock.Second, func(c *Cedar) { c.StartScrolling(1.0) }),
			PaperForks: 0.7, PaperSwitches: 172, PaperWaits: 115, PaperTimeout: 0.69, PaperMLEnters: 2032, PaperCVs: 30, PaperMLs: 797,
		},
		{
			Name: "Document formatting", System: "Cedar", Build: cedar(4*vclock.Second, func(c *Cedar) { c.StartFormatter() }),
			PaperForks: 3.6, PaperSwitches: 171, PaperWaits: 130, PaperTimeout: 0.72, PaperMLEnters: 2739, PaperCVs: 46, PaperMLs: 1060,
		},
		{
			Name: "Document previewing", System: "Cedar", Build: cedar(4*vclock.Second, func(c *Cedar) { c.StartPreviewer() }),
			PaperForks: 1.6, PaperSwitches: 222, PaperWaits: 157, PaperTimeout: 0.56, PaperMLEnters: 1335, PaperCVs: 32, PaperMLs: 938,
		},
		{
			Name: "Make program", System: "Cedar", Build: cedar(0, func(c *Cedar) { c.StartMake() }),
			PaperForks: 0.3, PaperSwitches: 170, PaperWaits: 158, PaperTimeout: 0.61, PaperMLEnters: 2218, PaperCVs: 24, PaperMLs: 1296,
		},
		{
			Name: "Compile", System: "Cedar", Build: cedar(0, func(c *Cedar) { c.StartCompile() }),
			PaperForks: 0.3, PaperSwitches: 135, PaperWaits: 119, PaperTimeout: 0.82, PaperMLEnters: 1365, PaperCVs: 36, PaperMLs: 2900,
		},
	}
}

// GVXBenchmarks returns the paper's four GVX benchmarks.
func GVXBenchmarks() []Benchmark {
	gvx := func(activity func(g *GVX)) func(w *sim.World, reg *paradigm.Registry) {
		return func(w *sim.World, reg *paradigm.Registry) {
			g := NewGVX(w, reg, DefaultGVXParams())
			if activity != nil {
				activity(g)
			}
		}
	}
	return []Benchmark{
		{
			Name: "Idle GVX", System: "GVX", Build: gvx(nil),
			PaperForks: 0, PaperSwitches: 33, PaperWaits: 32, PaperTimeout: 0.99, PaperMLEnters: 366, PaperCVs: 5, PaperMLs: 48,
		},
		{
			Name: "Keyboard input", System: "GVX", Build: gvx(func(g *GVX) { g.StartKeyboard(4.1) }),
			PaperForks: 0, PaperSwitches: 60, PaperWaits: 38, PaperTimeout: 0.42, PaperMLEnters: 1436, PaperCVs: 7, PaperMLs: 204,
		},
		{
			Name: "Mouse movement", System: "GVX", Build: gvx(func(g *GVX) { g.StartMouse(30) }),
			PaperForks: 0, PaperSwitches: 34, PaperWaits: 33, PaperTimeout: 0.96, PaperMLEnters: 410, PaperCVs: 5, PaperMLs: 52,
		},
		{
			Name: "Window scrolling", System: "GVX", Build: gvx(func(g *GVX) { g.StartScrolling(2.0) }),
			PaperForks: 0, PaperSwitches: 43, PaperWaits: 25, PaperTimeout: 0.61, PaperMLEnters: 691, PaperCVs: 6, PaperMLs: 209,
		},
	}
}

// AllBenchmarks returns all twelve benchmarks, Cedar first.
func AllBenchmarks() []Benchmark {
	return append(CedarBenchmarks(), GVXBenchmarks()...)
}

// FindBenchmark returns the benchmark with the given system and name.
func FindBenchmark(system, name string) (Benchmark, error) {
	for _, b := range AllBenchmarks() {
		if b.System == system && b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: no benchmark %q/%q", system, name)
}
