package workload

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// GVXParams are the calibration knobs of the GVX (GlobalView) model. GVX
// contrasts with Cedar everywhere the paper looked: 22 eternal threads,
// no forking at all (not even for input), almost everything at priority
// 3, interrupts at level 5 rather than 7, far fewer distinct monitors and
// CVs, nearly all waits timing out when idle, and noticeably higher
// monitor contention under load.
type GVXParams struct {
	LibrarySize int

	TimeoutSleepers int
	SleeperPeriod   vclock.Duration
	SleeperTouches  int
	SleeperWork     vclock.Duration
	UIPokeables     int
	UITouches       int
	UIWork          vclock.Duration

	// Per-keystroke handling (unforked, in the Notifier's callback chain).
	KeyTouches    int
	KeyWork       vclock.Duration
	UIPokesPerKey int

	MouseTouches int
	MouseUIPokes int

	// Scrolling hits one shared window monitor hard — the contention the
	// paper measured at 0.4 %.
	ScrollTouches     int
	ScrollWork        vclock.Duration
	ScrollWindowHolds int             // touches of the single shared window monitor
	ScrollWindowHold  vclock.Duration // hold time of that monitor
}

// DefaultGVXParams returns the calibrated defaults.
func DefaultGVXParams() GVXParams {
	return GVXParams{
		LibrarySize:       230,
		TimeoutSleepers:   15,
		SleeperPeriod:     470 * vclock.Millisecond,
		SleeperTouches:    10,
		SleeperWork:       900 * vclock.Microsecond,
		UIPokeables:       3,
		UITouches:         14,
		UIWork:            500 * vclock.Microsecond,
		KeyTouches:        200,
		KeyWork:           2 * vclock.Millisecond,
		UIPokesPerKey:     2,
		MouseTouches:      12,
		MouseUIPokes:      1,
		ScrollTouches:     70,
		ScrollWork:        150 * vclock.Millisecond,
		ScrollWindowHolds: 3,
		ScrollWindowHold:  600 * vclock.Microsecond,
	}
}

func (p GVXParams) regions() map[string]Region {
	return map[string]Region{
		"core":   {0, 44},
		"text":   {44, 190},
		"cursor": {0, 48},
		"window": {44, 200},
	}
}

// GVX is one modeled GVX world.
type GVX struct {
	W   *sim.World
	Reg *paradigm.Registry
	Lib *Library
	P   GVXParams

	regions map[string]Region
	input   *paradigm.DeviceQueue
	groups  []*SleeperGroup // timeout sleepers sharing CVs (Table 3: ~5 CVs)
	ui      *SleeperGroup   // event-driven UI helpers sharing one CV
	// windowMonitor is the shared monitor index scrolling contends on.
	windowMonitor int

	stops []func()
}

// NewGVX builds the idle GVX world: 22 eternal threads, no transient
// forking, input handled entirely by unforked callbacks from the
// Notifier chain.
func NewGVX(w *sim.World, reg *paradigm.Registry, p GVXParams) *GVX {
	g := &GVX{
		W: w, Reg: reg, P: p,
		Lib:     NewLibrary(w, "gvx-lib", p.LibrarySize),
		regions: p.regions(),
	}
	g.input = paradigm.NewDeviceQueue(w, "gvx-input")
	g.windowMonitor = 10 // a core monitor every UI path shares

	core := g.regions["core"]

	// Almost all GVX threads sit at priority 3, and the population shares
	// a handful of CVs: three timeout groups of five threads each. Every
	// third member also passes through the shared window monitor.
	perGroup := p.TimeoutSleepers / 3
	for gi := 0; gi < 3; gi++ {
		period := p.SleeperPeriod + vclock.Duration(gi-1)*90*vclock.Millisecond
		grp := SpawnSleeperGroupFunc(w, reg, fmt.Sprintf("gvx-group-%d", gi), perGroup,
			sim.PriorityLow, period, func(t *sim.Thread, i int) {
				if i%3 == 0 {
					g.Lib.TouchOne(t, g.windowMonitor, 80*vclock.Microsecond)
				}
				g.Lib.Touch(t, core, p.SleeperTouches)
				// One member of the first group is a heavyweight (a
				// layout/paint pass): its quantum-sliced bursts give GVX
				// the paper's large execution-time share at ~50 ms.
				if gi == 0 && i == 0 {
					t.Compute(50 * vclock.Millisecond)
					return
				}
				t.Compute(p.SleeperWork + vclock.Duration(i%3)*800*vclock.Microsecond)
			})
		g.groups = append(g.groups, grp)
	}

	// Event-driven UI helpers sharing one CV; each activation also passes
	// through the shared window monitor, which is how scrolling produces
	// contention (§3's 0.4 %).
	g.ui = SpawnSleeperGroupFunc(w, reg, "gvx-ui", p.UIPokeables, sim.PriorityLow, 0, func(t *sim.Thread, i int) {
		g.Lib.TouchOne(t, g.windowMonitor, 120*vclock.Microsecond)
		g.Lib.Touch(t, g.regions["text"], p.UITouches)
		t.Compute(p.UIWork)
	})

	// "The lower two priority levels [are used] only for a few background
	// helper tasks. Two of the five low-priority threads in fact never
	// ran during our experiments": two helpers wait on events that never
	// come.
	for i := 0; i < 2; i++ {
		reg.Register(paradigm.KindUnknown)
		w.Spawn(fmt.Sprintf("gvx-helper-idle-%d", i), sim.PriorityMin, func(t *sim.Thread) any {
			t.Block(sim.BlockCV) // parked forever
			return nil
		})
	}
	// ...and two that occasionally do run.
	for i := 0; i < 2; i++ {
		paradigm.StartSleeper(w, reg, fmt.Sprintf("gvx-helper-%d", i), sim.PriorityBackground, 5*vclock.Second, func(t *sim.Thread) {
			g.Lib.Touch(t, core, 6)
			t.Compute(30 * vclock.Millisecond)
		})
	}

	g.startNotifier()
	return g
}

// startNotifier spawns GVX's Notifier at priority 5 — "while Cedar uses
// level 7 for interrupt handling and doesn't use level 5, GVX does the
// opposite". It handles every event inline with unforked callbacks: "no
// additional threads are forked for any user interface activity" (§3).
func (g *GVX) startNotifier() {
	g.Reg.Register(paradigm.KindSerializer)
	g.W.Spawn("gvx-Notifier", sim.PriorityHigh, func(t *sim.Thread) any {
		for {
			ev, ok := g.input.Get(t)
			if !ok {
				return nil
			}
			e := ev.(inputEvent)
			// Coalesce trailing mouse motion.
			for e.kind == "mouse" {
				more, ok := g.input.TryGet(t)
				if !ok {
					break
				}
				m := more.(inputEvent)
				if m.kind != "mouse" {
					g.handle(t, e)
					e = m
					continue
				}
				e.count += m.count
			}
			g.handle(t, e)
		}
	})
}

func (g *GVX) handle(t *sim.Thread, e inputEvent) {
	switch e.kind {
	case "key":
		g.Lib.Touch(t, g.regions["text"], g.P.KeyTouches)
		g.Lib.TouchOne(t, g.windowMonitor, 150*vclock.Microsecond)
		t.Compute(g.P.KeyWork)
		// Keyboard activity turns the UI-related sleeper groups
		// event-driven: notifies beat their timeouts, which is how GVX's
		// timeout fraction collapses from 99 % idle to 42 % while typing
		// even though nothing is forked.
		for i := 0; i < g.P.UIPokesPerKey; i++ {
			g.ui.PokeExternal()
			g.groups[i%len(g.groups)].PokeExternal()
		}
	case "mouse":
		// Coalesced cursor tracking: cheap, pokes nothing — GVX mouse
		// activity looks almost exactly like an idle system (Table 2).
		g.Lib.Touch(t, g.regions["cursor"], g.P.MouseTouches)
		t.Compute(250 * vclock.Microsecond)
	case "scroll":
		// Wake the UI helpers first; they contend on the window monitor
		// during the repaint's display I/O below.
		for i := 0; i < g.P.UIPokeables; i++ {
			g.ui.PokeExternal()
		}
		g.Lib.Touch(t, g.regions["window"], g.P.ScrollTouches)
		for i := 0; i < g.P.ScrollWindowHolds; i++ {
			g.Lib.TouchOneIO(t, g.windowMonitor, g.P.ScrollWindowHold, 1500*vclock.Microsecond)
		}
		t.Compute(g.P.ScrollWork)
	}
}

// generate mirrors Cedar.generate for GVX input.
func (g *GVX) generate(mean vclock.Duration, fire func()) (stop func()) {
	stopped := false
	var next func()
	schedule := func() {
		j := vclock.Duration(float64(mean) * (0.5 + g.W.Rand().Float64()))
		g.W.After(j, next)
	}
	next = func() {
		if stopped {
			return
		}
		fire()
		schedule()
	}
	schedule()
	return func() { stopped = true }
}

// StartKeyboard begins keystroke input at about keysPerSec.
func (g *GVX) StartKeyboard(keysPerSec float64) {
	mean := vclock.Duration(float64(vclock.Second) / keysPerSec)
	g.stops = append(g.stops, g.generate(mean, func() {
		g.input.Push(inputEvent{kind: "key", count: 1})
	}))
}

// StartMouse begins mouse motion at about eventsPerSec raw events,
// delivered in hardware bursts of 6 (coalesced by the Notifier).
func (g *GVX) StartMouse(eventsPerSec float64) {
	const burst = 10
	mean := vclock.Duration(float64(vclock.Second) * burst / eventsPerSec)
	g.stops = append(g.stops, g.generate(mean, func() {
		for i := 0; i < burst; i++ {
			g.input.Push(inputEvent{kind: "mouse", count: 1})
		}
	}))
}

// StartScrolling begins scroll clicks at about scrollsPerSec. GVX UI
// threads contend visibly on the shared window monitor here (§3 measured
// 0.4 % contention scrolling, far above Cedar's 0.01–0.1 %).
func (g *GVX) StartScrolling(scrollsPerSec float64) {
	mean := vclock.Duration(float64(vclock.Second) / scrollsPerSec)
	g.stops = append(g.stops, g.generate(mean, func() {
		g.input.Push(inputEvent{kind: "scroll", count: 1})
	}))
}

// Stop halts all generators.
func (g *GVX) Stop() {
	for _, s := range g.stops {
		s()
	}
	g.stops = nil
}
