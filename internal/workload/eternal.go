package workload

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// EternalSpec describes one eternal (never-exiting) thread: a sleeper
// that wakes every Period, calls through Touches monitors in Region,
// computes Work, and waits again. These are the threads behind the
// paper's idle-system numbers: "an idle Cedar system has about 35 eternal
// threads running in it".
type EternalSpec struct {
	Name    string
	Pri     sim.Priority
	Period  vclock.Duration
	Touches int
	Region  Region
	Work    vclock.Duration
}

// SpawnEternals creates sleepers from specs and returns them.
func SpawnEternals(w *sim.World, reg *paradigm.Registry, lib *Library, specs []EternalSpec) []*paradigm.Sleeper {
	out := make([]*paradigm.Sleeper, 0, len(specs))
	for _, s := range specs {
		s := s
		out = append(out, paradigm.StartSleeper(w, reg, s.Name, s.Pri, s.Period, func(t *sim.Thread) {
			lib.Touch(t, s.Region, s.Touches)
			t.Compute(s.Work)
		}))
	}
	return out
}

// SpawnPokeables creates purely event-driven sleepers (no timeout): UI
// helper threads (cursor blinker, caret, selection highlighter, …) that
// run only when input activity pokes them. Idle, they contribute no CV
// waits to the measurement window; under keyboard/mouse load they are the
// "significant increases in activity by eternal threads" §3 reports.
func SpawnPokeables(w *sim.World, reg *paradigm.Registry, lib *Library, n int, namePrefix string, pri sim.Priority, touches int, region Region, work vclock.Duration) []*paradigm.Sleeper {
	out := make([]*paradigm.Sleeper, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-%d", namePrefix, i)
		out = append(out, paradigm.StartSleeper(w, reg, name, pri, 0, func(t *sim.Thread) {
			lib.Touch(t, region, touches)
			t.Compute(work)
		}))
	}
	return out
}

// SleeperGroup is a set of eternal threads all waiting on ONE shared
// condition variable with a timeout. GVX concentrates its waits this way:
// the paper's Table 3 shows 22 eternal GVX threads touching only ~5
// distinct CVs, versus Cedar's one-CV-per-sleeper style.
type SleeperGroup struct {
	w    *sim.World
	m    *monitor.Monitor
	cv   *monitor.Cond
	n    int
	runs int
}

// SpawnSleeperGroup creates n threads sharing one CV. Each thread waits
// with the given timeout period; on wake (timeout or poke) it calls
// through the library and computes. period 0 makes the group purely
// event-driven.
func SpawnSleeperGroup(w *sim.World, reg *paradigm.Registry, lib *Library, name string, n int, pri sim.Priority, period vclock.Duration, touches int, region Region, work vclock.Duration) *SleeperGroup {
	return SpawnSleeperGroupFunc(w, reg, name, n, pri, period, func(t *sim.Thread, i int) {
		lib.Touch(t, region, touches)
		t.Compute(work)
	})
}

// SpawnSleeperGroupFunc is SpawnSleeperGroup with an arbitrary per-wake
// body; i is the member index.
func SpawnSleeperGroupFunc(w *sim.World, reg *paradigm.Registry, name string, n int, pri sim.Priority, period vclock.Duration, body func(t *sim.Thread, i int)) *SleeperGroup {
	g := &SleeperGroup{w: w, n: n}
	g.m = monitor.New(w, name+".mon")
	g.cv = g.m.NewCondTimeout(name+".cv", period)
	for i := 0; i < n; i++ {
		i := i
		reg.Register(paradigm.KindSleeper)
		w.Spawn(fmt.Sprintf("%s-%d", name, i), pri, func(t *sim.Thread) any {
			for {
				g.m.Enter(t)
				g.cv.Wait(t)
				g.m.Exit(t)
				body(t, i)
				g.runs++
			}
		})
	}
	return g
}

// PokeExternal notifies one waiter of the group's shared CV from driver
// context.
func (g *SleeperGroup) PokeExternal() { g.cv.NotifyExternal() }

// Runs returns the total activations across the group.
func (g *SleeperGroup) Runs() int { return g.runs }

// PumpChain is a producer sleeper feeding a consumer pump through a
// bounded buffer: the producer's waits time out, the consumer's are
// notified. Chains supply the notified fraction of an idle system's
// waits (idle Cedar: ~18 % of waits notified).
type PumpChain struct {
	Producer *paradigm.Sleeper
	Consumer *sim.Thread
	Buffer   *paradigm.Buffer
}

// SpawnPumpChain creates one chain: every period the producer puts a
// token; the consumer wakes (a notified CV wait), touches the library and
// computes.
func SpawnPumpChain(w *sim.World, reg *paradigm.Registry, lib *Library, name string, pri sim.Priority, period vclock.Duration, touches int, region Region, work vclock.Duration) *PumpChain {
	buf := paradigm.NewBuffer(w, name+".chan", 8)
	chain := &PumpChain{Buffer: buf}
	chain.Producer = paradigm.StartSleeper(w, reg, name+".prod", pri, period, func(t *sim.Thread) {
		buf.Put(t, struct{}{})
	})
	reg.Register(paradigm.KindGeneralPump)
	chain.Consumer = w.Spawn(name+".cons", pri, func(t *sim.Thread) any {
		for {
			if _, ok := buf.Get(t); !ok {
				return nil
			}
			lib.Touch(t, region, touches)
			t.Compute(work)
		}
	})
	return chain
}
