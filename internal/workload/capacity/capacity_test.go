package capacity

import (
	"strings"
	"testing"
)

// mm1ish is a synthetic runner with a hard knee at capRate: below it
// everything completes promptly, above it the tail blows up and work is
// left undone. Deterministic in rate, like a real measured run.
func mm1ish(capRate float64) Runner {
	return func(rate float64) Point {
		offered := int64(rate)
		if rate <= capRate {
			return Point{Offered: offered, Completed: offered, P99US: 100}
		}
		return Point{Offered: offered, Completed: int64(capRate), P99US: 50_000}
	}
}

func TestFindBisectsToKnee(t *testing.T) {
	res := Find(Sweep{
		Name: "t", Start: 100,
		Criterion: Criterion{P99SLOUS: 5000},
	}, mm1ish(1000))
	// Ramp: 100 200 400 800 1600(bad). Bisect: 1200(bad) 1000(ok) 1100(bad).
	if !res.Saturated {
		t.Fatalf("criterion never tripped: %+v", res)
	}
	if res.KneeRate != 1000 {
		t.Errorf("KneeRate = %g, want 1000", res.KneeRate)
	}
	if len(res.Points) != 8 {
		t.Errorf("measured %d points, want 5 ramp + 3 bisection", len(res.Points))
	}
	if res.Schema != Schema || res.Name != "t" {
		t.Errorf("record header: %+v", res)
	}
	bad := res.Points[4]
	if !bad.Overloaded || !strings.Contains(bad.Reason, "p99") {
		t.Errorf("first overloaded point: %+v", bad)
	}
	if ok := res.Points[3]; ok.Overloaded || ok.Ratio != 1 {
		t.Errorf("last healthy ramp point: %+v", ok)
	}
}

func TestFindRatioCriterion(t *testing.T) {
	res := Find(Sweep{
		Name: "t", Start: 600, MaxSteps: 3, Bisect: -1,
		Criterion: Criterion{MinRatio: 0.95},
	}, mm1ish(1000))
	// Ramp only: 600(ok) 1200(ratio 1000/1200 < 0.95, bad); bisection off.
	if !res.Saturated || res.KneeRate != 600 {
		t.Errorf("KneeRate = %g saturated=%t, want 600 true", res.KneeRate, res.Saturated)
	}
	if len(res.Points) != 2 {
		t.Errorf("Bisect: -1 still measured %d points, want 2", len(res.Points))
	}
	if r := res.Points[1].Reason; !strings.Contains(r, "completion ratio") {
		t.Errorf("reason = %q, want a ratio verdict", r)
	}
}

func TestFindNeverSaturates(t *testing.T) {
	res := Find(Sweep{
		Name: "t", Start: 10, MaxSteps: 4,
		Criterion: Criterion{P99SLOUS: 5000},
	}, mm1ish(1e9))
	if res.Saturated {
		t.Errorf("saturated on an unreachable knee")
	}
	// The knee is only a lower bound: the last ramp rate, 10*2^3.
	if res.KneeRate != 80 {
		t.Errorf("KneeRate = %g, want 80", res.KneeRate)
	}
	if len(res.Points) != 4 {
		t.Errorf("measured %d points, want 4", len(res.Points))
	}
}

func TestFindFirstPointOverloaded(t *testing.T) {
	res := Find(Sweep{
		Name: "t", Start: 5000,
		Criterion: Criterion{P99SLOUS: 5000},
	}, mm1ish(1000))
	if !res.Saturated || res.KneeRate != 0 {
		t.Errorf("KneeRate = %g saturated=%t, want 0 true", res.KneeRate, res.Saturated)
	}
	// No healthy rate to bracket from: bisection must not run.
	if len(res.Points) != 1 {
		t.Errorf("measured %d points, want 1", len(res.Points))
	}
}

func TestFindCustomFactor(t *testing.T) {
	var rates []float64
	Find(Sweep{
		Name: "t", Start: 100, Factor: 10, MaxSteps: 3, Bisect: -1,
		Criterion: Criterion{P99SLOUS: 5000},
	}, func(rate float64) Point {
		rates = append(rates, rate)
		return Point{Offered: 1, Completed: 1, P99US: 100}
	})
	if len(rates) != 3 || rates[0] != 100 || rates[1] != 1000 || rates[2] != 10000 {
		t.Errorf("ramp rates = %v, want [100 1000 10000]", rates)
	}
}

func TestFindPanicsOnBadSweep(t *testing.T) {
	for _, sw := range []Sweep{
		{Name: "no start", Criterion: Criterion{P99SLOUS: 1}},
		{Name: "no criterion", Start: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Find accepted a sweep that can never terminate meaningfully", sw.Name)
				}
			}()
			Find(sw, mm1ish(1000))
		}()
	}
}

// TestCriterionBothClauses: when both clauses trip, the reason names
// both — a knee record should explain itself without the raw run.
func TestCriterionBothClauses(t *testing.T) {
	c := Criterion{P99SLOUS: 1000, MinRatio: 0.99}
	p := Point{Offered: 100, Completed: 50, P99US: 9999}
	c.classify(&p)
	if !p.Overloaded || p.Ratio != 0.5 {
		t.Fatalf("classify: %+v", p)
	}
	if !strings.Contains(p.Reason, "p99") || !strings.Contains(p.Reason, "completion ratio") {
		t.Errorf("reason %q should name both tripped clauses", p.Reason)
	}
}
