// Package capacity finds the saturation knee of a workload
// configuration: the offered-load rate past which an overload criterion
// trips. The driver ramps the rate geometrically across whole runs
// until a point overloads, then bisects between the last healthy rate
// and the first overloaded one — the vhive baseline_capacity loop
// (sweep sizes until the overload flag appears) with a refinement
// stage. Every measurement is one deterministic simulation at a fixed
// seed, so the whole sweep — rates, points, knee — is byte-reproducible
// and ships as a schema-versioned JSON record alongside the bench
// artifact.
package capacity

import "fmt"

// Schema is the knee-record schema version.
const Schema = 1

// Criterion says when a measured point counts as overloaded. Zero
// fields disable that clause; at least one must be set.
type Criterion struct {
	// P99SLOUS trips when the run's p99 latency exceeds this many
	// virtual microseconds.
	P99SLOUS int64 `json:"p99_slo_us,omitempty"`
	// MinRatio trips when completed/offered falls below this floor
	// within the run's horizon.
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// enabled reports whether the criterion can trip at all.
func (c Criterion) enabled() bool { return c.P99SLOUS > 0 || c.MinRatio > 0 }

// classify fills the point's Ratio, Overloaded and Reason fields.
func (c Criterion) classify(p *Point) {
	if p.Offered > 0 {
		p.Ratio = float64(p.Completed) / float64(p.Offered)
	}
	if c.P99SLOUS > 0 && p.P99US > c.P99SLOUS {
		p.Overloaded = true
		p.Reason = fmt.Sprintf("p99 %dus over SLO %dus", p.P99US, c.P99SLOUS)
	}
	if c.MinRatio > 0 && p.Ratio < c.MinRatio {
		p.Overloaded = true
		if p.Reason != "" {
			p.Reason += "; "
		}
		p.Reason += fmt.Sprintf("completion ratio %.3f under floor %.3f", p.Ratio, c.MinRatio)
	}
}

// Point is one measured operating point, in measurement order.
type Point struct {
	// Rate is the offered arrival rate, requests per virtual second.
	Rate float64 `json:"rate"`
	// Offered and Completed count the run's requests.
	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	// P99US is the run's end-to-end p99 latency in virtual microseconds.
	P99US int64 `json:"p99_us"`
	// Ratio is Completed/Offered within the run horizon.
	Ratio float64 `json:"ratio"`
	// Overloaded and Reason record the criterion's verdict.
	Overloaded bool   `json:"overloaded"`
	Reason     string `json:"reason,omitempty"`
}

// Sweep configures one knee search.
type Sweep struct {
	// Name labels the configuration under test.
	Name string
	// Start is the first offered rate; Factor scales it per ramp step
	// (default 2). MaxSteps bounds the ramp (default 8).
	Start    float64
	Factor   float64
	MaxSteps int
	// Bisect is the number of bisection refinements between the last
	// healthy and first overloaded rate (default 3; negative disables).
	Bisect    int
	Criterion Criterion
}

// Result is the schema-versioned knee record for one configuration.
type Result struct {
	Schema    int       `json:"schema"`
	Name      string    `json:"name"`
	Criterion Criterion `json:"criterion"`
	// Points holds every measured operating point, in measurement
	// order: the geometric ramp first, then the bisection probes.
	Points []Point `json:"points"`
	// KneeRate is the highest measured rate that stayed healthy (0 when
	// even the first point overloaded).
	KneeRate float64 `json:"knee_rate"`
	// Saturated reports whether the criterion tripped at all: a false
	// value means the ramp never found the knee and KneeRate is only a
	// lower bound.
	Saturated bool `json:"saturated"`
}

// Runner measures one operating point: run the configuration at the
// given offered rate and report Offered/Completed/P99US. Rate, Ratio
// and the verdict are filled in by Find.
type Runner func(rate float64) Point

// Find runs the sweep: geometric ramp until the criterion trips or
// MaxSteps runs out, then bisection between the bracketing rates. The
// runner must be deterministic in its rate argument for the result to
// be reproducible.
func Find(sw Sweep, run Runner) *Result {
	if sw.Start <= 0 || !sw.Criterion.enabled() {
		panic(fmt.Sprintf("capacity: bad sweep %+v", sw))
	}
	if sw.Factor <= 1 {
		sw.Factor = 2
	}
	if sw.MaxSteps <= 0 {
		sw.MaxSteps = 8
	}
	if sw.Bisect == 0 {
		sw.Bisect = 3
	} else if sw.Bisect < 0 {
		sw.Bisect = 0
	}
	res := &Result{Schema: Schema, Name: sw.Name, Criterion: sw.Criterion}
	measure := func(rate float64) Point {
		p := run(rate)
		p.Rate = rate
		sw.Criterion.classify(&p)
		res.Points = append(res.Points, p)
		return p
	}
	var lastGood, firstBad float64
	rate := sw.Start
	for step := 0; step < sw.MaxSteps; step++ {
		p := measure(rate)
		if p.Overloaded {
			res.Saturated = true
			firstBad = rate
			break
		}
		lastGood = rate
		rate *= sw.Factor
	}
	if res.Saturated && lastGood > 0 {
		lo, hi := lastGood, firstBad
		for i := 0; i < sw.Bisect; i++ {
			mid := (lo + hi) / 2
			if measure(mid).Overloaded {
				hi = mid
			} else {
				lo = mid
			}
		}
		lastGood = lo
	}
	res.KneeRate = lastGood
	return res
}
