package workload

import (
	"testing"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestTraceInvariants runs the busiest benchmark with full tracing and
// validates structural invariants across the ~100k-event stream:
//
//   - monitor enters and exits pair up: per monitor, the trace never
//     shows two enters without an exit between them, and every exit has
//     a matching enter by the same thread;
//   - every WAIT has a WAIT-DONE by the same thread on the same CV
//     (allowing waits still pending at the horizon);
//   - switch events per CPU alternate occupants sensibly (no thread
//     switched in twice without leaving).
func TestTraceInvariants(t *testing.T) {
	var buf trace.Buffer
	w := sim.NewWorld(sim.Config{Trace: &buf, Seed: 3, SystemDaemon: true})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b, err := FindBenchmark("Cedar", "Keyboard input")
	if err != nil {
		t.Fatal(err)
	}
	b.Build(w, reg)
	w.Run(vclock.Time(10 * vclock.Second))

	holder := map[int64]int32{} // monitor -> current holder
	waiting := map[int64]int{}  // (thread<<32|cv) -> pending waits
	cpuCur := map[int64]int32{} // cpu -> current thread
	key := func(th int32, cv int64) int64 { return int64(th)<<32 ^ cv }

	enters, exits, waits, dones := 0, 0, 0, 0
	for _, ev := range buf.Events {
		switch ev.Kind {
		case trace.KindMLEnter:
			if h, held := holder[ev.Arg]; held {
				t.Fatalf("at %s: t%d entered m%d already held by t%d", ev.Time, ev.Thread, ev.Arg, h)
			}
			holder[ev.Arg] = ev.Thread
			enters++
		case trace.KindMLExit:
			h, held := holder[ev.Arg]
			if !held || h != ev.Thread {
				t.Fatalf("at %s: t%d exited m%d it does not hold (holder=%d held=%v)", ev.Time, ev.Thread, ev.Arg, h, held)
			}
			delete(holder, ev.Arg)
			exits++
		case trace.KindWait:
			waiting[key(ev.Thread, ev.Arg)]++
			waits++
		case trace.KindWaitDone:
			k := key(ev.Thread, ev.Arg)
			if waiting[k] <= 0 {
				t.Fatalf("at %s: t%d wait-done on cv%d without a wait", ev.Time, ev.Thread, ev.Arg)
			}
			waiting[k]--
			dones++
		case trace.KindSwitch:
			if ev.Thread != trace.NoThread && cpuCur[ev.Aux] == ev.Thread {
				t.Fatalf("at %s: t%d switched in twice on cpu%d", ev.Time, ev.Thread, ev.Aux)
			}
			cpuCur[ev.Aux] = ev.Thread
		}
	}
	if enters == 0 || waits == 0 {
		t.Fatal("trace suspiciously quiet")
	}
	// Waits still pending at the horizon are fine; finished ones balance.
	if dones > waits {
		t.Fatalf("more wait-dones (%d) than waits (%d)", dones, waits)
	}
	t.Logf("validated %d events: %d/%d enters/exits, %d/%d waits/dones", len(buf.Events), enters, exits, waits, dones)
}
