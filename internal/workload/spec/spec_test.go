package spec

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// validCohorts returns a fresh general-form spec that Check accepts;
// the rejection table mutates copies of it.
func validCohorts() *Spec {
	return &Spec{Schema: Schema, Name: "t", Kind: KindCohorts,
		Cohorts: []Cohort{{
			Name: "a", Sessions: 4, Requests: 100,
			Arrival: &Arrival{Process: ProcPoisson, Rate: 1000},
			Service: &Service{Dist: DistConst, MeanUS: 10},
		}},
	}
}

func TestCheckAcceptsValid(t *testing.T) {
	if err := validCohorts().Check(); err != nil {
		t.Fatalf("valid cohorts spec rejected: %v", err)
	}
}

// TestCheckRejects walks the validation surface: every mutation must
// fail, wrap ErrInvalidSpec, and say why.
func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"schema mismatch", func(s *Spec) { s.Schema = 2 }, "schema 2 unsupported"},
		{"missing name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"unknown kind", func(s *Spec) { s.Kind = "batch" }, `unknown kind "batch"`},
		{"negative horizon", func(s *Spec) { s.HorizonUS = -1 }, "horizon_us and start_us must be >= 0"},
		{"unnamed cohort", func(s *Spec) { s.Cohorts[0].Name = "" }, "cohort 0 has no name"},
		{"duplicate cohort name", func(s *Spec) {
			s.Cohorts = append(s.Cohorts, s.Cohorts[0])
		}, `duplicate cohort name "a"`},
		{"unknown priority", func(s *Spec) { s.Cohorts[0].Priority = "urgent" }, `unknown priority "urgent"`},
		{"negative slo", func(s *Spec) { s.Cohorts[0].SLOUS = -1 }, "slo_us must be >= 0"},
		{"zero sessions", func(s *Spec) { s.Cohorts[0].Sessions = 0 }, "sessions must be >= 1"},
		{"zero requests", func(s *Spec) { s.Cohorts[0].Requests = 0 }, "requests must be >= 1"},
		{"missing arrival", func(s *Spec) { s.Cohorts[0].Arrival = nil }, "arrival is required"},
		{"zero rate", func(s *Spec) { s.Cohorts[0].Arrival.Rate = 0 }, "arrival rate must be > 0"},
		{"unknown process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "mmpp" }, `arrival process "mmpp"`},
		{"gamma without shape", func(s *Spec) {
			s.Cohorts[0].Arrival = &Arrival{Process: ProcGamma, Rate: 100}
		}, "gamma arrivals need shape > 0"},
		{"weibull without shape", func(s *Spec) {
			s.Cohorts[0].Arrival = &Arrival{Process: ProcWeibull, Rate: 100}
		}, "weibull arrivals need shape > 0"},
		{"missing service for cohorts kind", func(s *Spec) { s.Cohorts[0].Service = nil }, "requires a service block"},
		{"unknown dist", func(s *Spec) { s.Cohorts[0].Service.Dist = "lognormal" }, `service dist "lognormal"`},
		{"zero service mean", func(s *Spec) { s.Cohorts[0].Service.MeanUS = 0 }, "service mean_us must be > 0"},
		{"pareto with thin tail", func(s *Spec) {
			s.Cohorts[0].Service = &Service{Dist: DistPareto, MeanUS: 10, Alpha: 1}
		}, "pareto service needs alpha > 1"},
		{"inverted modulation window", func(s *Spec) {
			s.Cohorts[0].Modulation = []Window{{FromUS: 10, ToUS: 10, Factor: 2}}
		}, "0 <= from_us < to_us"},
		{"zero modulation factor", func(s *Spec) {
			s.Cohorts[0].Modulation = []Window{{FromUS: 0, ToUS: 10, Factor: 0}}
		}, "factor must be > 0"},
		{"cohorts kind with batch", func(s *Spec) { s.Batch = &Batch{Workers: 2} }, "no pipeline/batch blocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validCohorts()
			tc.mutate(s)
			err := s.Check()
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error does not wrap ErrInvalidSpec: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckKindConstraints covers the per-kind shape rules the general
// table above cannot reach.
func TestCheckKindConstraints(t *testing.T) {
	echo := func() *Spec {
		s := validCohorts()
		s.Kind = KindEcho
		return s
	}
	cases := []struct {
		name string
		spec func() *Spec
		want string
	}{
		{"echo with two cohorts", func() *Spec {
			s := echo()
			c := s.Cohorts[0]
			c.Name = "b"
			s.Cohorts = append(s.Cohorts, c)
			return s
		}, "exactly one cohort"},
		{"echo with slo", func() *Spec {
			s := echo()
			s.Cohorts[0].SLOUS = 100
			return s
		}, "slo_us is not valid for kind echo"},
		{"echo with gamma arrivals", func() *Spec {
			s := echo()
			s.Cohorts[0].Arrival = &Arrival{Process: ProcGamma, Rate: 100, Shape: 2}
			return s
		}, "not valid for kind echo"},
		{"echo with modulation", func() *Spec {
			s := echo()
			s.Cohorts[0].Modulation = []Window{{FromUS: 0, ToUS: 10, Factor: 2}}
			return s
		}, "modulation is only valid for kind cohorts"},
		{"pipeline with cohorts", func() *Spec {
			s := validCohorts()
			s.Kind = KindPipeline
			s.Pipeline = &Pipeline{Pipelines: 2, Stages: 3, Requests: 10, Rate: 100}
			return s
		}, "no cohorts/batch"},
		{"pipeline with one stage", func() *Spec {
			return &Spec{Schema: Schema, Name: "t", Kind: KindPipeline,
				Pipeline: &Pipeline{Pipelines: 2, Stages: 1, Requests: 10, Rate: 100}}
		}, "stages >= 2"},
		{"pipeline with start delay", func() *Spec {
			return &Spec{Schema: Schema, Name: "t", Kind: KindPipeline, StartUS: 5,
				Pipeline: &Pipeline{Pipelines: 2, Stages: 3, Requests: 10, Rate: 100}}
		}, "start_us must be 0"},
		{"mixed without horizon", func() *Spec {
			s := validCohorts()
			s.Kind = KindMixed
			s.Batch = &Batch{Workers: 2, ChunkUS: 100}
			return s
		}, "requires horizon_us > 0"},
		{"mixed without batch", func() *Spec {
			s := validCohorts()
			s.Kind = KindMixed
			s.HorizonUS = 1000
			return s
		}, "requires a batch block"},
		{"mixed with normal interactive", func() *Spec {
			s := validCohorts()
			s.Kind = KindMixed
			s.HorizonUS = 1000
			s.Batch = &Batch{Workers: 2, ChunkUS: 100}
			s.Cohorts[0].Priority = "normal"
			return s
		}, "pins the interactive cohort at priority high"},
		{"slo without target", func() *Spec {
			s := validCohorts()
			s.Kind = KindSLO
			s.HorizonUS = 1000
			return s
		}, "requires slo_us > 0"},
		{"slo without horizon", func() *Spec {
			s := validCohorts()
			s.Kind = KindSLO
			s.Cohorts[0].SLOUS = 100
			return s
		}, "requires horizon_us > 0"},
		{"server with arrivals", func() *Spec {
			s := validCohorts()
			s.Kind = KindServer
			return s
		}, "externally driven"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec().Check()
			if err == nil {
				t.Fatalf("accepted")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error does not wrap ErrInvalidSpec: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParsePriority(t *testing.T) {
	for name, want := range map[string]sim.Priority{
		"min": sim.PriorityMin, "background": sim.PriorityBackground,
		"low": sim.PriorityLow, "normal": sim.PriorityNormal,
		"high": sim.PriorityHigh, "daemon": sim.PriorityDaemon,
		"interrupt": sim.PriorityInterrupt,
	} {
		got, err := ParsePriority(name)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if got, err := ParsePriority(""); err != nil || got != 0 {
		t.Errorf("ParsePriority(\"\") = %v, %v; want 0, nil", got, err)
	}
	if _, err := ParsePriority("urgent"); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("ParsePriority(urgent) err = %v; want ErrInvalidSpec", err)
	}
}

func TestHorizon(t *testing.T) {
	s := validCohorts()
	s.HorizonUS = 12345
	if got := s.Horizon(); got != 12345*vclock.Microsecond {
		t.Errorf("declared horizon: got %v", got)
	}
	s.HorizonUS = 0
	// 100 requests at 1000/s inject over 0.1s; the derivation is 4x.
	if got := s.Horizon(); got != 400*vclock.Millisecond {
		t.Errorf("derived horizon: got %v, want 400ms", got)
	}
	p := &Spec{Schema: Schema, Name: "t", Kind: KindPipeline,
		Pipeline: &Pipeline{Pipelines: 2, Stages: 3, Requests: 50, Rate: 1000}}
	if got := p.Horizon(); got != 200*vclock.Millisecond {
		t.Errorf("pipeline horizon: got %v, want 200ms", got)
	}
}

func TestServiceMeanDefault(t *testing.T) {
	c := &Cohort{}
	if got := c.ServiceMean(); got != 5*vclock.Microsecond {
		t.Errorf("nil service mean = %v, want the echo generator's 5us", got)
	}
	c.Service = &Service{Dist: DistConst, MeanUS: 42}
	if got := c.ServiceMean(); got != 42*vclock.Microsecond {
		t.Errorf("declared mean = %v, want 42us", got)
	}
}

// TestPoissonMatchesExpDelay pins the bridge identity: the spec
// package's Poisson sampler must reproduce the historical expDelay draw
// (one ExpFloat64 per gap, 1us floor) byte-for-byte, or the shipped
// W-series specs stop compiling to the historical arrival sequences.
func TestPoissonMatchesExpDelay(t *testing.T) {
	a := &Arrival{Process: ProcPoisson, Rate: 5000}
	gap := a.GapSampler()
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		want := vclock.Duration(r2.ExpFloat64() / 5000 * 1e6)
		if want < vclock.Microsecond {
			want = vclock.Microsecond
		}
		if got := gap(r1); got != want {
			t.Fatalf("draw %d: sampler %v != expDelay %v", i, got, want)
		}
	}
}

// TestSamplerMeans checks every process and distribution converges on
// its declared mean — the property the knee driver's offered-load
// accounting leans on.
func TestSamplerMeans(t *testing.T) {
	const n = 200_000
	mean := func(s Sampler) float64 {
		rng := rand.New(rand.NewSource(1))
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s(rng).Micros())
		}
		return sum / n
	}
	for _, tc := range []struct {
		name string
		s    Sampler
		want float64
		tol  float64
	}{
		{"poisson gaps", (&Arrival{Process: ProcPoisson, Rate: 1000}).GapSampler(), 1000, 0.05},
		{"gamma regular gaps", (&Arrival{Process: ProcGamma, Rate: 1000, Shape: 4}).GapSampler(), 1000, 0.05},
		{"gamma bursty gaps", (&Arrival{Process: ProcGamma, Rate: 1000, Shape: 0.5}).GapSampler(), 1000, 0.05},
		{"weibull gaps", (&Arrival{Process: ProcWeibull, Rate: 1000, Shape: 1.5}).GapSampler(), 1000, 0.05},
		{"exp service", (&Service{Dist: DistExp, MeanUS: 500}).Sampler(), 500, 0.05},
		// The Pareto tail converges slowly; allow a wider band.
		{"pareto service", (&Service{Dist: DistPareto, MeanUS: 500, Alpha: 2.5}).Sampler(), 500, 0.10},
	} {
		got := mean(tc.s)
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("%s: empirical mean %.1fus, want %.0fus +/- %.0f%%", tc.name, got, tc.want, tc.tol*100)
		}
	}
	// Constant service consumes no randomness: a nil stream must be safe.
	cs := (&Service{Dist: DistConst, MeanUS: 7}).Sampler()
	if got := cs(nil); got != 7*vclock.Microsecond {
		t.Errorf("const sampler = %v, want 7us", got)
	}
}

func TestFactorAt(t *testing.T) {
	win := []Window{
		{FromUS: 0, ToUS: 100, Factor: 2},
		{FromUS: 50, ToUS: 150, Factor: 3},
	}
	for _, tc := range []struct {
		at   int64
		want float64
	}{
		{0, 2}, {49, 2}, {50, 6}, {99, 6}, {100, 3}, {149, 3}, {150, 1},
	} {
		if got := FactorAt(win, vclock.Time(tc.at)); got != tc.want {
			t.Errorf("FactorAt(%dus) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestShipped(t *testing.T) {
	names := ShippedNames()
	if len(names) != 3 || names[0] != "w1" || names[1] != "w2" || names[2] != "w3" {
		t.Fatalf("ShippedNames() = %v, want [w1 w2 w3]", names)
	}
	kinds := map[string]string{"w1": KindEcho, "w2": KindPipeline, "w3": KindMixed}
	for name, kind := range kinds {
		s, err := Shipped(name)
		if err != nil {
			t.Fatalf("Shipped(%s): %v", name, err)
		}
		if s.Kind != kind {
			t.Errorf("Shipped(%s).Kind = %s, want %s", name, s.Kind, kind)
		}
		// Shipped returns a private copy: mutating it must not leak into
		// the next parse (quick mode scales cohort sizes in place).
		if len(s.Cohorts) > 0 {
			s.Cohorts[0].Sessions = 1
			again := MustShipped(name)
			if again.Cohorts[0].Sessions == 1 {
				t.Errorf("Shipped(%s) shares state across calls", name)
			}
		}
	}
	if _, err := Shipped("w9"); err == nil || !strings.Contains(err.Error(), `no shipped spec "w9"`) {
		t.Errorf("Shipped(w9) err = %v", err)
	}
}

// TestParseRoundTrip: a validated spec survives Marshal -> Parse with
// nothing lost — the property that makes specs diffable artifacts.
func TestParseRoundTrip(t *testing.T) {
	s := validCohorts()
	s.Cohorts[0].Modulation = []Window{{FromUS: 10, ToUS: 20, Factor: 2.5}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse of marshalled spec: %v", err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip not stable:\n%s\n%s", data, data2)
	}
}
