package spec

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecJSON feeds arbitrary documents through Parse. The invariants:
// Parse never panics, every rejection wraps ErrInvalidSpec, and any
// accepted spec is a fixed point — its canonical re-encoding parses to
// the same bytes (specs are diffable artifacts, so encode/decode must
// not drift). Seeds are the shipped W-series specs plus the testdata
// corpus (valid and invalid alike).
func FuzzSpecJSON(f *testing.F) {
	for _, name := range ShippedNames() {
		data, err := shippedFS.ReadFile("shipped/" + name + ".json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"name":"x","kind":"server","cohorts":[{"name":"s","sessions":3}]}`))
	f.Add([]byte(`{"schema":1,"name":"x","kind":"cohorts","cohorts":[{"name":"a","sessions":1,"requests":1,"arrival":{"process":"weibull","rate":0.5,"shape":0.1},"service":{"dist":"pareto","mean_us":1,"alpha":1.0001}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("rejection does not wrap ErrInvalidSpec: %v", err)
			}
			return
		}
		if s.Horizon() < 0 {
			t.Fatalf("accepted spec %q has negative horizon %v", s.Name, s.Horizon())
		}
		canon, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		canon2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(canon2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\n%s", canon, canon2)
		}
	})
}
