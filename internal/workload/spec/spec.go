// Package spec defines the declarative workload description the
// workload generators compile from: a schema-versioned JSON document
// naming multi-client cohorts, their arrival processes (Poisson, Gamma,
// Weibull), their service-demand distributions (constant, exponential,
// Pareto), and rate modulation over virtual-time windows (diurnal and
// burst shapes). The W-series load shapes that used to live as Go
// literals ship as embedded spec files (see Shipped), so "what load did
// this run offer" is data — diffable, fuzzable, and replayable — rather
// than code.
//
// A Spec says what the load is; workload.StartSpec says how to run it.
// This package deliberately imports only the simulator's leaf packages
// (sim for priorities, vclock for time) so every layer above — the
// generators, the cluster, the experiments, the CLI — can share one
// description type without cycles.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// Schema is the workload-spec schema version this package reads and
// writes. Parse rejects documents declaring any other version.
const Schema = 1

// ErrInvalidSpec is the sentinel every spec validation failure wraps,
// in the style of fault.ErrInvalidPlan: callers gate on
// errors.Is(err, ErrInvalidSpec) and print the wrapped detail.
var ErrInvalidSpec = errors.New("spec: invalid workload spec")

// failf wraps a validation failure around the sentinel.
func failf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Kinds a Spec can declare. Each maps to one generator family in
// internal/workload:
//
//	echo     — W1's open-loop echo server: one cohort, Poisson
//	           arrivals fanned across a session pool.
//	pipeline — W2's slack-process stage chains.
//	mixed    — W3's interactive cohort over an always-ready batch pool.
//	slo      — the S-series SLO workload: named cohorts with latency
//	           targets and scheduler-visible metadata.
//	cohorts  — the general form: any number of cohorts, any supported
//	           arrival process and service distribution, optional rate
//	           modulation windows.
//	server   — a passive externally-driven session pool (the cluster
//	           layer's per-instance world); no arrival process at all.
const (
	KindEcho     = "echo"
	KindPipeline = "pipeline"
	KindMixed    = "mixed"
	KindSLO      = "slo"
	KindCohorts  = "cohorts"
	KindServer   = "server"
)

// Arrival processes and service distributions.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"

	DistConst  = "const"
	DistExp    = "exp"
	DistPareto = "pareto"
)

// Spec is one complete workload description. All durations are integer
// virtual microseconds so the JSON form is exact and platform-free.
type Spec struct {
	// Schema must equal the package Schema constant.
	Schema int `json:"schema"`
	// Name labels the workload; it is stamped on recorded traces.
	Name string `json:"name"`
	// Kind selects the generator family (see the Kind constants).
	Kind string `json:"kind"`
	// SystemDaemon asks the compiled world for the paper's §6.2
	// timeslice-donating daemon (advisory: StartSpec cannot retrofit a
	// world, so callers building their own world read this knob).
	SystemDaemon bool `json:"system_daemon,omitempty"`
	// Background names a preset population (workload.Presets: "cedar",
	// "gvx") to build underneath the load; "" or "w1-echo" means none.
	Background string `json:"background,omitempty"`
	// Cohorts are the request classes (all kinds except pipeline).
	Cohorts []Cohort `json:"cohorts,omitempty"`
	// Pipeline configures the pipeline kind.
	Pipeline *Pipeline `json:"pipeline,omitempty"`
	// Batch configures the always-ready compute pool (mixed and slo).
	Batch *Batch `json:"batch,omitempty"`
	// HorizonUS bounds the run in virtual microseconds. Required for
	// kinds whose populations never exit on their own (mixed, slo);
	// optional elsewhere (0 derives 4x the injection span).
	HorizonUS int64 `json:"horizon_us,omitempty"`
	// StartUS delays the first arrival; 0 derives a bound from the
	// population size, as the generators always have.
	StartUS int64 `json:"start_us,omitempty"`
}

// Cohort is one named class of request traffic.
type Cohort struct {
	// Name labels the cohort; names must be unique within a Spec.
	Name string `json:"name"`
	// Sessions is the cohort's session-thread pool size.
	Sessions int `json:"sessions"`
	// Requests is the total offered load (not used by the server kind,
	// whose driver owns the arrival process).
	Requests int64 `json:"requests,omitempty"`
	// Arrival is the cohort's arrival process (absent for server).
	Arrival *Arrival `json:"arrival,omitempty"`
	// Service is the per-request demand distribution (absent for
	// server; echo defaults to const 5us when omitted).
	Service *Service `json:"service,omitempty"`
	// Priority names the session threads' priority: "min",
	// "background", "low", "normal", "high", "daemon", "interrupt".
	// Empty selects the generator's default.
	Priority string `json:"priority,omitempty"`
	// SLOUS is the per-request latency target in microseconds (slo
	// kind: required; cohorts kind: optional on-time accounting).
	SLOUS int64 `json:"slo_us,omitempty"`
	// Modulation scales the arrival rate over virtual-time windows
	// (cohorts kind only). Overlapping windows multiply, so a diurnal
	// base curve composes with a burst overlay.
	Modulation []Window `json:"modulation,omitempty"`
}

// Arrival describes an inter-arrival process with the given mean rate.
type Arrival struct {
	// Process is poisson, gamma, or weibull.
	Process string `json:"process"`
	// Rate is the mean arrival rate, requests per virtual second.
	Rate float64 `json:"rate"`
	// Shape is the gamma/weibull shape parameter (>1 regularizes the
	// process, <1 makes it burstier than Poisson). Ignored for poisson.
	Shape float64 `json:"shape,omitempty"`
}

// Service describes a per-request CPU demand distribution.
type Service struct {
	// Dist is const, exp, or pareto.
	Dist string `json:"dist"`
	// MeanUS is the mean demand in microseconds.
	MeanUS int64 `json:"mean_us"`
	// Alpha is the Pareto tail index (>1 so the mean exists). Ignored
	// for const and exp.
	Alpha float64 `json:"alpha,omitempty"`
}

// Window scales a cohort's arrival rate by Factor over [FromUS, ToUS).
type Window struct {
	FromUS int64   `json:"from_us"`
	ToUS   int64   `json:"to_us"`
	Factor float64 `json:"factor"`
}

// Pipeline configures the W2 stage-chain kind.
type Pipeline struct {
	Pipelines   int     `json:"pipelines"`
	Stages      int     `json:"stages"`
	Buffer      int     `json:"buffer,omitempty"`
	Requests    int64   `json:"requests"`
	Rate        float64 `json:"rate"`
	StageCostUS int64   `json:"stage_cost_us,omitempty"`
}

// Batch configures the always-ready background compute pool.
type Batch struct {
	Workers int `json:"workers"`
	// ChunkUS is one compute grain in microseconds.
	ChunkUS int64 `json:"chunk_us,omitempty"`
	// SLOUS is the per-chunk latency target (slo kind only).
	SLOUS int64 `json:"slo_us,omitempty"`
	// Priority names the workers' priority; empty means background.
	Priority string `json:"priority,omitempty"`
}

// priorities maps spec priority names onto the simulator's ladder.
var priorities = map[string]sim.Priority{
	"min":        sim.PriorityMin,
	"background": sim.PriorityBackground,
	"low":        sim.PriorityLow,
	"normal":     sim.PriorityNormal,
	"high":       sim.PriorityHigh,
	"daemon":     sim.PriorityDaemon,
	"interrupt":  sim.PriorityInterrupt,
}

// PriorityNames returns the valid priority names, sorted, for messages.
func PriorityNames() []string {
	names := make([]string, 0, len(priorities))
	for n := range priorities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePriority maps a spec priority name to the simulator's ladder.
// The empty name returns 0, meaning "the generator's default".
func ParsePriority(name string) (sim.Priority, error) {
	if name == "" {
		return 0, nil
	}
	p, ok := priorities[name]
	if !ok {
		return 0, failf("unknown priority %q (want one of %v)", name, PriorityNames())
	}
	return p, nil
}

// Parse decodes and validates one spec document.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, failf("parse: %v", err)
	}
	if err := s.Check(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Check validates the spec. Every failure wraps ErrInvalidSpec.
func (s *Spec) Check() error {
	if s.Schema != Schema {
		return failf("schema %d unsupported (want %d)", s.Schema, Schema)
	}
	if s.Name == "" {
		return failf("name is required")
	}
	if s.HorizonUS < 0 || s.StartUS < 0 {
		return failf("%s: horizon_us and start_us must be >= 0", s.Name)
	}
	if err := s.checkCohortNames(); err != nil {
		return err
	}
	switch s.Kind {
	case KindEcho:
		return s.checkEcho()
	case KindPipeline:
		return s.checkPipeline()
	case KindMixed:
		return s.checkMixed()
	case KindSLO:
		return s.checkSLO()
	case KindCohorts:
		return s.checkCohorts()
	case KindServer:
		return s.checkServer()
	default:
		return failf("%s: unknown kind %q (want echo, pipeline, mixed, slo, cohorts or server)", s.Name, s.Kind)
	}
}

// checkCohortNames rejects unnamed and duplicate cohorts for every kind.
func (s *Spec) checkCohortNames() error {
	seen := make(map[string]bool, len(s.Cohorts))
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return failf("%s: cohort %d has no name", s.Name, i)
		}
		if seen[c.Name] {
			return failf("%s: duplicate cohort name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if _, err := ParsePriority(c.Priority); err != nil {
			return failf("%s: cohort %q: %v", s.Name, c.Name, err)
		}
		if c.SLOUS < 0 {
			return failf("%s: cohort %q: slo_us must be >= 0", s.Name, c.Name)
		}
	}
	return nil
}

// checkCohortLoad validates the open-loop fields shared by every
// arrival-driven cohort. Which processes and distributions are legal
// depends on the kind: the legacy kinds compile onto the historical
// Poisson/constant generators, the cohorts kind onto the general one.
func (s *Spec) checkCohortLoad(c *Cohort, procs, dists []string) error {
	if c.Sessions < 1 {
		return failf("%s: cohort %q: sessions must be >= 1", s.Name, c.Name)
	}
	if c.Requests < 1 {
		return failf("%s: cohort %q: requests must be >= 1", s.Name, c.Name)
	}
	if c.Arrival == nil {
		return failf("%s: cohort %q: arrival is required", s.Name, c.Name)
	}
	if !contains(procs, c.Arrival.Process) {
		return failf("%s: cohort %q: arrival process %q not valid for kind %s (want %v)",
			s.Name, c.Name, c.Arrival.Process, s.Kind, procs)
	}
	if c.Arrival.Rate <= 0 {
		return failf("%s: cohort %q: arrival rate must be > 0 (got %v)", s.Name, c.Name, c.Arrival.Rate)
	}
	if (c.Arrival.Process == ProcGamma || c.Arrival.Process == ProcWeibull) && c.Arrival.Shape <= 0 {
		return failf("%s: cohort %q: %s arrivals need shape > 0", s.Name, c.Name, c.Arrival.Process)
	}
	if c.Service != nil {
		if !contains(dists, c.Service.Dist) {
			return failf("%s: cohort %q: service dist %q not valid for kind %s (want %v)",
				s.Name, c.Name, c.Service.Dist, s.Kind, dists)
		}
		if c.Service.MeanUS <= 0 {
			return failf("%s: cohort %q: service mean_us must be > 0", s.Name, c.Name)
		}
		if c.Service.Dist == DistPareto && c.Service.Alpha <= 1 {
			return failf("%s: cohort %q: pareto service needs alpha > 1", s.Name, c.Name)
		}
	}
	if len(c.Modulation) > 0 && s.Kind != KindCohorts {
		return failf("%s: cohort %q: modulation is only valid for kind cohorts", s.Name, c.Name)
	}
	for i, w := range c.Modulation {
		if w.FromUS < 0 || w.ToUS <= w.FromUS {
			return failf("%s: cohort %q: modulation window %d must have 0 <= from_us < to_us", s.Name, c.Name, i)
		}
		if w.Factor <= 0 {
			return failf("%s: cohort %q: modulation window %d factor must be > 0", s.Name, c.Name, i)
		}
	}
	return nil
}

func (s *Spec) checkBatch(required bool) error {
	if s.Batch == nil {
		if required {
			return failf("%s: kind %s requires a batch block", s.Name, s.Kind)
		}
		return nil
	}
	b := s.Batch
	if b.Workers < 0 {
		return failf("%s: batch workers must be >= 0", s.Name)
	}
	if b.ChunkUS < 0 || b.SLOUS < 0 {
		return failf("%s: batch chunk_us and slo_us must be >= 0", s.Name)
	}
	if _, err := ParsePriority(b.Priority); err != nil {
		return failf("%s: batch: %v", s.Name, err)
	}
	return nil
}

func (s *Spec) checkEcho() error {
	if len(s.Cohorts) != 1 || s.Pipeline != nil || s.Batch != nil {
		return failf("%s: kind echo wants exactly one cohort and no pipeline/batch blocks", s.Name)
	}
	c := &s.Cohorts[0]
	if c.SLOUS != 0 {
		return failf("%s: cohort %q: slo_us is not valid for kind echo", s.Name, c.Name)
	}
	return s.checkCohortLoad(c, []string{ProcPoisson}, []string{DistConst})
}

func (s *Spec) checkPipeline() error {
	if s.Pipeline == nil || len(s.Cohorts) != 0 || s.Batch != nil {
		return failf("%s: kind pipeline wants a pipeline block and no cohorts/batch", s.Name)
	}
	if s.StartUS != 0 {
		return failf("%s: kind pipeline derives its own start delay; start_us must be 0", s.Name)
	}
	p := s.Pipeline
	if p.Pipelines < 1 || p.Stages < 2 {
		return failf("%s: pipeline wants pipelines >= 1 and stages >= 2", s.Name)
	}
	if p.Requests < 1 {
		return failf("%s: pipeline requests must be >= 1", s.Name)
	}
	if p.Rate <= 0 {
		return failf("%s: pipeline rate must be > 0 (got %v)", s.Name, p.Rate)
	}
	if p.Buffer < 0 || p.StageCostUS < 0 {
		return failf("%s: pipeline buffer and stage_cost_us must be >= 0", s.Name)
	}
	return nil
}

func (s *Spec) checkMixed() error {
	if len(s.Cohorts) != 1 || s.Pipeline != nil {
		return failf("%s: kind mixed wants exactly one cohort and no pipeline block", s.Name)
	}
	if s.HorizonUS <= 0 {
		return failf("%s: kind mixed requires horizon_us > 0 (the batch pool never exits)", s.Name)
	}
	if s.StartUS != 0 {
		return failf("%s: kind mixed derives its own start delay; start_us must be 0", s.Name)
	}
	c := &s.Cohorts[0]
	if c.Priority != "" && c.Priority != "high" {
		return failf("%s: cohort %q: kind mixed pins the interactive cohort at priority high", s.Name, c.Name)
	}
	if c.SLOUS != 0 {
		return failf("%s: cohort %q: slo_us is not valid for kind mixed", s.Name, c.Name)
	}
	if err := s.checkBatch(true); err != nil {
		return err
	}
	if s.Batch.Priority != "" && s.Batch.Priority != "background" {
		return failf("%s: kind mixed pins the batch pool at priority background", s.Name)
	}
	return s.checkCohortLoad(c, []string{ProcPoisson}, []string{DistConst})
}

func (s *Spec) checkSLO() error {
	if len(s.Cohorts) == 0 || s.Pipeline != nil {
		return failf("%s: kind slo wants at least one cohort and no pipeline block", s.Name)
	}
	if s.HorizonUS <= 0 {
		return failf("%s: kind slo requires horizon_us > 0", s.Name)
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.SLOUS <= 0 {
			return failf("%s: cohort %q: kind slo requires slo_us > 0", s.Name, c.Name)
		}
		if c.Service == nil {
			return failf("%s: cohort %q: kind slo requires a service block", s.Name, c.Name)
		}
		if err := s.checkCohortLoad(c, []string{ProcPoisson}, []string{DistConst}); err != nil {
			return err
		}
	}
	return s.checkBatch(false)
}

func (s *Spec) checkCohorts() error {
	if len(s.Cohorts) == 0 || s.Pipeline != nil || s.Batch != nil {
		return failf("%s: kind cohorts wants at least one cohort and no pipeline/batch blocks", s.Name)
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Service == nil {
			return failf("%s: cohort %q: kind cohorts requires a service block", s.Name, c.Name)
		}
		if err := s.checkCohortLoad(c,
			[]string{ProcPoisson, ProcGamma, ProcWeibull},
			[]string{DistConst, DistExp, DistPareto}); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) checkServer() error {
	if len(s.Cohorts) != 1 || s.Pipeline != nil || s.Batch != nil {
		return failf("%s: kind server wants exactly one cohort and no pipeline/batch blocks", s.Name)
	}
	c := &s.Cohorts[0]
	if c.Sessions < 1 {
		return failf("%s: cohort %q: sessions must be >= 1", s.Name, c.Name)
	}
	if c.Arrival != nil || c.Service != nil || c.Requests != 0 || c.SLOUS != 0 || len(c.Modulation) > 0 {
		return failf("%s: cohort %q: kind server is externally driven — only sessions and priority apply", s.Name, c.Name)
	}
	return nil
}

// ServiceMean returns the cohort's mean service demand as a duration,
// with the echo generator's historical 5us default when unspecified.
func (c *Cohort) ServiceMean() vclock.Duration {
	if c.Service == nil {
		return 5 * vclock.Microsecond
	}
	return vclock.Duration(c.Service.MeanUS)
}

// SimPriority returns the cohort's parsed priority (0 when unset or
// unknown — Check has already rejected unknown names).
func (c *Cohort) SimPriority() sim.Priority {
	p, _ := ParsePriority(c.Priority)
	return p
}

// Horizon returns the spec's run bound: the declared horizon, or — for
// the self-draining kinds — four times the nominal injection span, the
// derivation the W-series experiments have always used.
func (s *Spec) Horizon() vclock.Duration {
	if s.HorizonUS > 0 {
		return vclock.Duration(s.HorizonUS)
	}
	var h vclock.Duration
	if s.Kind == KindPipeline && s.Pipeline != nil {
		return vclock.Duration(4 * float64(s.Pipeline.Requests) / s.Pipeline.Rate * 1e6)
	}
	for _, c := range s.Cohorts {
		if c.Arrival == nil || c.Arrival.Rate <= 0 {
			continue
		}
		if d := vclock.Duration(4 * float64(c.Requests) / c.Arrival.Rate * 1e6); d > h {
			h = d
		}
	}
	return h
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
