package spec

import (
	"math"
	"math/rand"

	"repro/internal/vclock"
)

// This file compiles Arrival and Service declarations into samplers —
// closures drawing from a generator-owned rand stream, quantized to the
// simulator's microsecond clock with a 1us floor exactly like the
// historical expDelay, so same-instant storms cannot form by rounding.
//
// The Poisson sampler reproduces expDelay's draw byte-for-byte (one
// ExpFloat64 per gap): that identity is what lets the shipped W-series
// specs compile to the same arrival sequences the hardcoded generators
// produced, which the bridge tests and the bench event-count gate pin.

// Sampler draws one duration from a distribution.
type Sampler func(*rand.Rand) vclock.Duration

// quantize floors a duration in float microseconds to the clock grain.
func quantize(us float64) vclock.Duration {
	d := vclock.Duration(us)
	if d < vclock.Microsecond {
		d = vclock.Microsecond
	}
	return d
}

// GapSampler compiles the arrival process into an inter-arrival-gap
// sampler with mean 1/Rate virtual seconds. Check must have accepted
// the spec first; unknown processes panic.
func (a *Arrival) GapSampler() Sampler {
	rate := a.Rate
	switch a.Process {
	case ProcPoisson:
		return func(rng *rand.Rand) vclock.Duration {
			return quantize(rng.ExpFloat64() / rate * 1e6)
		}
	case ProcGamma:
		// Gamma(k, θ) with k = Shape and θ chosen so the mean gap is
		// 1/rate: regular (k>1) or bursty (k<1) arrivals at equal load.
		k := a.Shape
		scaleUS := 1 / (rate * k) * 1e6
		return func(rng *rand.Rand) vclock.Duration {
			return quantize(gammaDraw(rng, k) * scaleUS)
		}
	case ProcWeibull:
		// Weibull(k, λ) with λ = 1/(rate·Γ(1+1/k)) so the mean is 1/rate.
		k := a.Shape
		scaleUS := 1 / (rate * math.Gamma(1+1/k)) * 1e6
		return func(rng *rand.Rand) vclock.Duration {
			return quantize(scaleUS * math.Pow(-math.Log(1-rng.Float64()), 1/k))
		}
	}
	panic("spec: GapSampler on unvalidated arrival process " + a.Process)
}

// Sampler compiles the service distribution into a demand sampler.
// The const sampler consumes no randomness, so adding a constant-service
// cohort to a spec never perturbs another cohort's stream.
func (s *Service) Sampler() Sampler {
	meanUS := float64(s.MeanUS)
	switch s.Dist {
	case DistConst:
		d := vclock.Duration(s.MeanUS)
		return func(*rand.Rand) vclock.Duration { return d }
	case DistExp:
		return func(rng *rand.Rand) vclock.Duration {
			return quantize(rng.ExpFloat64() * meanUS)
		}
	case DistPareto:
		// Pareto with tail index Alpha and minimum x_m chosen so the
		// mean is MeanUS: x_m = mean·(α-1)/α.
		alpha := s.Alpha
		xmUS := meanUS * (alpha - 1) / alpha
		return func(rng *rand.Rand) vclock.Duration {
			return quantize(xmUS / math.Pow(1-rng.Float64(), 1/alpha))
		}
	}
	panic("spec: Sampler on unvalidated service dist " + s.Dist)
}

// gammaDraw samples Gamma(k, 1) by Marsaglia–Tsang squeeze for k >= 1,
// boosted from k+1 for k < 1 (G(k) = G(k+1)·U^{1/k}).
func gammaDraw(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64() // (0,1]: the boost exponent must not see 0
		return gammaDraw(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// FactorAt returns the modulation factor in effect at time t: the
// product of every window containing t, 1 when none do.
func FactorAt(windows []Window, t vclock.Time) float64 {
	f := 1.0
	us := t.Micros()
	for _, w := range windows {
		if us >= w.FromUS && us < w.ToUS {
			f *= w.Factor
		}
	}
	return f
}
