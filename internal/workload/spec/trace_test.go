package spec

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func sampleTrace() *Trace {
	tr := NewTrace("t", 7)
	tr.Add(vclock.Time(10), "a", 0, 5*vclock.Microsecond)
	tr.Add(vclock.Time(25), "b", 3, 200*vclock.Microsecond)
	tr.Add(vclock.Time(25), "a", 1, 5*vclock.Microsecond)
	return tr
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	back, err := ReadTrace(bytes.NewReader(tr.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("round trip lost data:\n%+v\n%+v", tr, back)
	}
	if !bytes.Equal(tr.Bytes(), back.Bytes()) {
		t.Errorf("canonical bytes differ after a round trip")
	}
	if got := tr.Cohort("a"); len(got) != 2 || got[0].Session != 0 || got[1].Session != 1 {
		t.Errorf("Cohort(a) = %+v", got)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := sampleTrace()
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("file round trip lost data")
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Errorf("ReadTraceFile on a missing path succeeded")
	}
}

func TestReadTraceRejects(t *testing.T) {
	head := `{"schema":1,"name":"t","seed":7}` + "\n"
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty input", "", "empty trace"},
		{"garbage header", "not json\n", "header"},
		{"wrong schema", `{"schema":9,"name":"t","seed":7}` + "\n", "schema 9 unsupported"},
		{"nameless header", `{"schema":1,"seed":7}` + "\n", "header has no name"},
		{"garbage entry", head + "nope\n", "line 2"},
		{"time going backwards", head +
			`{"t":50,"c":"a","s":0,"svc":5}` + "\n" +
			`{"t":40,"c":"a","s":0,"svc":5}` + "\n", "nondecreasing"},
		{"negative session", head + `{"t":1,"c":"a","s":-1,"svc":5}` + "\n", "negative"},
		{"negative service", head + `{"t":1,"c":"a","s":0,"svc":-5}` + "\n", "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted")
			}
			if !errors.Is(err, ErrInvalidTrace) {
				t.Errorf("error does not wrap ErrInvalidTrace: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Equal arrival instants are legal — cohorts interleave on one clock.
	if _, err := ReadTrace(strings.NewReader(head +
		`{"t":10,"c":"a","s":0,"svc":5}` + "\n" +
		`{"t":10,"c":"b","s":0,"svc":5}` + "\n")); err != nil {
		t.Errorf("equal instants rejected: %v", err)
	}
}
