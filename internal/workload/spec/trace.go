package spec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/vclock"
)

// This file holds the request-trace artifact: a JSON-lines file whose
// first line is a schema-versioned header and whose remaining lines are
// one generated request each, in arrival order. A trace is what a
// generator *did* — the exact virtual arrival instants, cohort, target
// session and service demand it drew — so replaying one reproduces a
// run's offered load byte-for-byte without touching the RNG, and two
// traces diff meaningfully. Generators append entries in injection
// order from driver context, which the cluster serializes even under
// sharded advance, so the artifact is byte-deterministic under seed and
// across Spec.Shards by construction.

// ErrInvalidTrace is the sentinel every trace decode/validation failure
// wraps.
var ErrInvalidTrace = errors.New("spec: invalid trace")

func tracef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidTrace, fmt.Sprintf(format, args...))
}

// TraceHeader is the artifact's first line.
type TraceHeader struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
}

// Entry is one generated request.
type Entry struct {
	// AtUS is the arrival instant in virtual microseconds.
	AtUS int64 `json:"t"`
	// Cohort names the class the request belongs to ("" for
	// single-class traces like the cluster's).
	Cohort string `json:"c,omitempty"`
	// Session is the target session index within the cohort's pool (for
	// cluster traces, the user identity before session mapping).
	Session int `json:"s"`
	// ServiceUS is the drawn service demand in microseconds.
	ServiceUS int64 `json:"svc"`
}

// Trace is a recorded request stream.
type Trace struct {
	TraceHeader
	Entries []Entry
}

// NewTrace returns an empty trace ready to record into.
func NewTrace(name string, seed int64) *Trace {
	return &Trace{TraceHeader: TraceHeader{Schema: Schema, Name: name, Seed: seed}}
}

// Add appends one generated request. Generators call it at injection
// time, from driver context, in arrival order.
func (t *Trace) Add(at vclock.Time, cohort string, session int, service vclock.Duration) {
	t.Entries = append(t.Entries, Entry{
		AtUS:      at.Micros(),
		Cohort:    cohort,
		Session:   session,
		ServiceUS: service.Micros(),
	})
}

// Cohort returns the entries belonging to one cohort, in arrival order.
func (t *Trace) Cohort(name string) []Entry {
	var out []Entry
	for _, e := range t.Entries {
		if e.Cohort == name {
			out = append(out, e)
		}
	}
	return out
}

// Write emits the trace as JSON lines: header first, one entry per line.
// The encoding is canonical (fixed field order, no wall-clock state), so
// equal traces produce equal bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.TraceHeader); err != nil {
		return err
	}
	for i := range t.Entries {
		if err := enc.Encode(&t.Entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Bytes renders the trace to its canonical byte form.
func (t *Trace) Bytes() []byte {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// WriteFile writes the trace artifact to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Bytes(), 0o644)
}

// ReadTrace decodes and validates a trace: schema must match, arrival
// times must be nondecreasing, sessions and demands must be sane.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, tracef("empty trace")
	}
	t := &Trace{}
	if err := json.Unmarshal(sc.Bytes(), &t.TraceHeader); err != nil {
		return nil, tracef("header: %v", err)
	}
	if t.Schema != Schema {
		return nil, tracef("schema %d unsupported (want %d)", t.Schema, Schema)
	}
	if t.Name == "" {
		return nil, tracef("header has no name")
	}
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, tracef("line %d: %v", line, err)
		}
		if n := len(t.Entries); n > 0 && e.AtUS < t.Entries[n-1].AtUS {
			return nil, tracef("line %d: arrival times must be nondecreasing", line)
		}
		if e.AtUS < 0 || e.Session < 0 || e.ServiceUS < 0 {
			return nil, tracef("line %d: negative time, session or service", line)
		}
		t.Entries = append(t.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadTraceFile reads and validates a trace artifact from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
