package spec

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The W-series operating points ship as spec files embedded in the
// binary: the JSON under shipped/ is the source of truth for what W1–W3
// offer, and the experiments compile these documents through the same
// path any user spec takes. The bridge tests pin the compiled output
// byte-identical to the historical hardcoded parameters.

//go:embed shipped/*.json
var shippedFS embed.FS

// Shipped parses a spec shipped with the repository ("w1", "w2", "w3")
// and returns a fresh copy the caller may mutate (quick-mode scaling).
func Shipped(name string) (*Spec, error) {
	data, err := shippedFS.ReadFile("shipped/" + name + ".json")
	if err != nil {
		return nil, failf("no shipped spec %q (have %v)", name, ShippedNames())
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("shipped spec %q: %w", name, err)
	}
	return s, nil
}

// MustShipped is Shipped for specs known at compile time.
func MustShipped(name string) *Spec {
	s, err := Shipped(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ShippedNames lists the embedded spec names, sorted.
func ShippedNames() []string {
	ents, err := shippedFS.ReadDir("shipped")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}
