package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/vclock"
	"repro/internal/workload/spec"
)

// This file holds the general cohort generator — the spec "cohorts"
// kind. Where W1's echo server is one Poisson cohort with constant
// service, CohortLoad runs any number of named cohorts, each with its
// own arrival process (Poisson/Gamma/Weibull), service-demand
// distribution (const/exp/Pareto), priority, optional latency target,
// and rate modulation over virtual-time windows. Each cohort owns a
// derived RNG stream ("workload.cohort.<name>"), so adding a cohort
// never perturbs another's draws, and the per-arrival draw order is
// fixed — session pick, service demand, next gap — so recorded traces
// replay byte-identically.

// cohortReq is one queued request: arrival instant plus drawn demand.
type cohortReq struct {
	born    vclock.Time
	service vclock.Duration
}

// cohortSession is one session thread plus its driver-owned queue.
type cohortSession struct {
	th   *sim.Thread
	q    []cohortReq
	head int
}

// cohortState is one cohort's arrival process and books.
type cohortState struct {
	c        spec.Cohort
	rng      *rand.Rand
	gap      spec.Sampler
	svc      spec.Sampler
	sessions []*cohortSession
	injected int64
	replay   []spec.Entry
	// Stats is the cohort's own slice of the run; OnTime counts
	// completions within the cohort's slo_us when one is declared.
	Stats    LoadStats
	OnTime   int64
	firstAt  vclock.Time
	lastDone vclock.Time
}

// CohortLoad is the general-cohort workload instance.
type CohortLoad struct {
	w  *sim.World
	sp *spec.Spec
	// Stats aggregates every cohort (exact merged percentiles).
	Stats    LoadStats
	cohorts  []*cohortState
	tap      RequestTap
	closed   bool
	firstAt  vclock.Time
	lastDone vclock.Time
}

// startCohorts compiles and spawns the cohorts kind. Reached through
// StartSpec (the one construction entry point); sp must have passed
// Check. replays maps cohort name to recorded entries, as in startSLO.
func startCohorts(w *sim.World, sp *spec.Spec, tap RequestTap, replays map[string][]spec.Entry) *CohortLoad {
	cl := &CohortLoad{w: w, sp: sp, tap: tap}
	total := 0
	for _, c := range sp.Cohorts {
		st := &cohortState{c: c, rng: w.DeriveRand("workload.cohort." + c.Name)}
		st.gap = c.Arrival.GapSampler()
		st.svc = c.Service.Sampler()
		if replays != nil {
			if ents := replays[c.Name]; ents != nil {
				st.replay = ents
				st.c.Requests = int64(len(ents))
			}
		}
		prio := c.SimPriority()
		if !prio.Valid() {
			prio = sim.PriorityNormal
		}
		for i := 0; i < c.Sessions; i++ {
			s := &cohortSession{}
			s.th = w.Spawn(fmt.Sprintf("%s-%d", c.Name, i), prio, cl.sessionBody(st, s))
			st.sessions = append(st.sessions, s)
		}
		st.Stats.Threads = c.Sessions
		cl.cohorts = append(cl.cohorts, st)
		total += c.Sessions
	}
	cl.Stats.Threads = total
	start := vclock.Duration(sp.StartUS)
	if start <= 0 {
		perPark := w.Config().SwitchCost + 10*vclock.Microsecond
		start = vclock.Duration(total)*perPark + 100*vclock.Millisecond
	}
	for _, st := range cl.cohorts {
		st := st
		first := start
		if st.replay != nil {
			first = vclock.Duration(st.replay[0].AtUS)
		}
		w.After(first, func() { cl.arrive(st) })
	}
	return cl
}

// arrive injects one request (driver context) and schedules the next.
// Draw order per arrival is fixed: session, service, gap. Modulation
// scales the drawn gap by 1/factor at the instant of scheduling, so a
// window with factor 2 doubles the cohort's instantaneous rate.
func (cl *CohortLoad) arrive(st *cohortState) {
	if st.injected >= st.c.Requests {
		return
	}
	now := cl.w.Now()
	var idx int
	var service vclock.Duration
	if st.replay != nil {
		e := st.replay[st.injected]
		idx, service = e.Session, vclock.Duration(e.ServiceUS)
	} else {
		idx = st.rng.Intn(len(st.sessions))
		service = st.svc(st.rng)
	}
	s := st.sessions[idx]
	if cl.Stats.Offered == 0 {
		cl.firstAt = now
	}
	if st.Stats.Offered == 0 {
		st.firstAt = now
	}
	s.q = append(s.q, cohortReq{born: now, service: service})
	cl.Stats.Offered++
	st.Stats.Offered++
	st.injected++
	if cl.tap != nil {
		cl.tap(now, st.c.Name, idx, service)
	}
	cl.w.WakeIfBlocked(s.th, nil)
	if st.injected < st.c.Requests {
		var gap vclock.Duration
		if st.replay != nil {
			gap = vclock.Time(0).Add(vclock.Duration(st.replay[st.injected].AtUS)).Sub(now)
		} else {
			gap = st.gap(st.rng)
			if f := spec.FactorAt(st.c.Modulation, now); f != 1 {
				gap = vclock.Duration(float64(gap) / f)
				if gap < vclock.Microsecond {
					gap = vclock.Microsecond
				}
			}
		}
		cl.w.After(gap, func() { cl.arrive(st) })
	} else if cl.allInjected() {
		cl.close()
	}
}

func (cl *CohortLoad) allInjected() bool {
	for _, st := range cl.cohorts {
		if st.injected < st.c.Requests {
			return false
		}
	}
	return true
}

func (cl *CohortLoad) close() {
	cl.closed = true
	for _, st := range cl.cohorts {
		for _, s := range st.sessions {
			cl.w.WakeIfBlocked(s.th, nil)
		}
	}
}

func (cl *CohortLoad) sessionBody(st *cohortState, s *cohortSession) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			if s.head == len(s.q) {
				s.q, s.head = s.q[:0], 0
				if cl.closed {
					return nil
				}
				t.Block(sim.BlockCV)
				continue
			}
			req := s.q[s.head]
			s.head++
			t.Compute(req.service)
			lat := t.Now().Sub(req.born)
			cl.Stats.Completed++
			cl.Stats.Latency.Add(lat)
			st.Stats.Completed++
			st.Stats.Latency.Add(lat)
			if st.c.SLOUS > 0 && lat <= vclock.Duration(st.c.SLOUS) {
				st.OnTime++
			}
			cl.lastDone = t.Now()
			st.lastDone = t.Now()
		}
	}
}

// Cohort returns one cohort's stats and on-time completion count by
// name (nil when unknown). Call after Finish.
func (cl *CohortLoad) Cohort(name string) (*LoadStats, int64) {
	for _, st := range cl.cohorts {
		if st.c.Name == name {
			return &st.Stats, st.OnTime
		}
	}
	return nil, 0
}

// CohortNames lists the cohorts in spec order.
func (cl *CohortLoad) CohortNames() []string {
	names := make([]string, len(cl.cohorts))
	for i, st := range cl.cohorts {
		names[i] = st.c.Name
	}
	return names
}

// Finish stamps the measurement windows after the driving Run returns.
func (cl *CohortLoad) Finish() *LoadStats {
	if cl.Stats.Completed > 0 {
		cl.Stats.Window = cl.lastDone.Sub(cl.firstAt)
	}
	for _, st := range cl.cohorts {
		if st.Stats.Completed > 0 {
			st.Stats.Window = st.lastDone.Sub(st.firstAt)
		}
	}
	return &cl.Stats
}
