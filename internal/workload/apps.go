package workload

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// spawnServices adds n timeout-driven service sleepers (font caches,
// style caches, symbol-table flushers, ...) that an application activity
// brings to life — they are why the busy benchmarks wait on more distinct
// CVs than the idle system (Table 3).
func (c *Cedar) spawnServices(name string, n int, region Region, basePeriod vclock.Duration) {
	for i := 0; i < n; i++ {
		period := basePeriod + vclock.Duration(i)*170*vclock.Millisecond
		paradigm.StartSleeper(c.W, c.Reg, fmt.Sprintf("%s-svc-%d", name, i), sim.PriorityLow, period, func(t *sim.Thread) {
			c.Lib.Touch(t, region, 5)
			t.Compute(400 * vclock.Microsecond)
		})
	}
}

// The four application benchmarks of §3, built on the Cedar model. Each
// matches the forking-pattern analysis of the paper:
//
//   - Document formatting: a main worker forks many transients, which
//     themselves fork one or more second-generation transients (the only
//     benchmark with a "great number" of transients, 3.6/s).
//   - Document previewing: moderate transient forking; transients simply
//     run to completion. Pages flow through a pump pipeline.
//   - Make: no worker fork — "the command-shell thread gets used as the
//     main worker thread" — except GC/finalization transients.
//   - Compile: few forks, compute-heavy, and a very wide set of distinct
//     monitors entered (Table 3: 2900).

// StartFormatter begins the document-formatting workload: a worker thread
// formatting pages continuously until Stop.
func (c *Cedar) StartFormatter() {
	stopped := false
	c.stops = append(c.stops, func() { stopped = true })
	format := c.regions["format"]
	c.spawnServices("format", 16, format, 1200*vclock.Millisecond)
	// Formatting allocates heavily: wake the GC daemon's world more often
	// by enqueueing finalizations.
	// A user-initiated batch task runs at background priority (§3: "user
	// interface activity tended to use higher priorities for its threads
	// than did user-initiated tasks").
	fpri := c.P.FormatterPriority
	if fpri == 0 {
		fpri = sim.PriorityBackground
	}
	worker := c.W.Spawn("formatter-worker", fpri, func(t *sim.Thread) any {
		page := 0
		for !stopped {
			c.Lib.Touch(t, format, 200)
			t.Compute(70 * vclock.Millisecond)
			t.BlockIO(30 * vclock.Millisecond) // fonts, images, page output
			c.pokeUI(3, 1)                     // progress display
			if page%8 == 1 {
				// Fork a transient that itself forks a child — the
				// formatter's distinctive two-generation pattern.
				paradigm.DeferTo(c.Reg, t, "format-transient", func(f *sim.Thread) {
					c.Lib.Touch(f, format, 55)
					f.Compute(6 * vclock.Millisecond)
					paradigm.DeferTo(c.Reg, f, "format-transient-child", func(f2 *sim.Thread) {
						c.Lib.Touch(f2, format, 35)
						f2.Compute(4 * vclock.Millisecond)
					})
				})
			} else if page%8 == 5 {
				paradigm.DeferTo(c.Reg, t, "format-transient", func(f *sim.Thread) {
					c.Lib.Touch(f, format, 55)
					f.Compute(6 * vclock.Millisecond)
				})
			}
			if page%6 == 5 {
				c.gcWork.Add(t, func(g *sim.Thread) {
					c.Lib.Touch(g, c.regions["core"], 10)
					g.Compute(vclock.Millisecond)
				})
			}
			page++
		}
		return page
	})
	worker.Detach()
}

// StartPreviewer begins the page-previewing workload: a reader worker
// feeding a rasterize/paint pump pipeline; transients run to completion.
func (c *Cedar) StartPreviewer() {
	stopped := false
	c.stops = append(c.stops, func() { stopped = true })
	preview := c.regions["preview"]
	c.spawnServices("preview", 6, preview, 1500*vclock.Millisecond)

	pages := paradigm.NewBuffer(c.W, "preview-pages", 4)
	raster := paradigm.NewBuffer(c.W, "preview-raster", 4)

	// Rasterizer and painter pumps (the paper's structural pipelines).
	c.Reg.Register(paradigm.KindGeneralPump)
	c.W.Spawn("preview-raster", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			if _, ok := pages.Get(t); !ok {
				raster.Close(t)
				return nil
			}
			c.Lib.Touch(t, preview, 60)
			t.Compute(18 * vclock.Millisecond)
			raster.Put(t, struct{}{})
		}
	}).Detach()
	c.Reg.Register(paradigm.KindGeneralPump)
	c.W.Spawn("preview-paint", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			if _, ok := raster.Get(t); !ok {
				return nil
			}
			c.Lib.Touch(t, preview, 45)
			t.Compute(12 * vclock.Millisecond)
			t.BlockIO(200 * vclock.Millisecond) // paint to the display
			c.pokeUI(2, 1)
		}
	}).Detach()

	worker := c.W.Spawn("preview-worker", sim.PriorityLow, func(t *sim.Thread) any {
		page := 0
		for !stopped {
			c.Lib.Touch(t, preview, 80)
			t.Compute(35 * vclock.Millisecond)
			pages.Put(t, struct{}{})
			if page%5 == 4 {
				// A transient that simply runs to completion.
				paradigm.DeferTo(c.Reg, t, "preview-transient", func(p *sim.Thread) {
					c.Lib.Touch(p, preview, 40)
					p.Compute(5 * vclock.Millisecond)
				})
			}
			page++
		}
		pages.Close(t)
		return page
	})
	worker.Detach()
}

// StartMake begins the make workload inside the command shell: checking
// whether a program needs recompiling forks nothing — the shell is the
// worker — except GC/finalization transients.
func (c *Cedar) StartMake() {
	stopped := false
	c.stops = append(c.stops, func() { stopped = true })
	mk := c.regions["make"]
	var job func(sh *sim.Thread)
	job = func(sh *sim.Thread) {
		// One dependency-scan step: stat files, read headers, compare.
		for i := 0; i < 6 && !stopped; i++ {
			c.Lib.Touch(sh, mk, 8)
			sh.Compute(4 * vclock.Millisecond)
		}
		// File-cache callbacks poke watcher threads (notified waits);
		// they run during the scan's read I/O below, so each job costs
		// only a couple of extra switches.
		c.pokeUI(2, 1)
		sh.BlockIO(9 * vclock.Millisecond)
		if stopped {
			return
		}
		// Occasionally the scan allocates enough to queue finalizers,
		// which the GC work queue forks (the benchmark's only forks).
		if c.W.Rand().Intn(100) == 0 {
			c.gcWork.Add(sh, func(g *sim.Thread) {
				paradigm.DeferTo(c.Reg, g, "finalize-transient", func(f *sim.Thread) {
					c.Lib.Touch(f, c.regions["core"], 8)
					f.Compute(800 * vclock.Microsecond)
				})
			})
		}
		c.shell.Enqueue(sh, 0, job) // keep the shell busy with the scan
	}
	c.shell.EnqueueExternal(0, job)
}

// StartCompile begins the compile workload: a compute-bound worker
// entering a very wide set of distinct monitors, with an internal
// parser→codegen pump pipeline (Table 3's 36 CVs) and rare forks.
func (c *Cedar) StartCompile() {
	stopped := false
	c.stops = append(c.stops, func() { stopped = true })
	comp := c.regions["compile"]

	c.spawnServices("compile", 8, comp, 1400*vclock.Millisecond)
	tokens := paradigm.NewBuffer(c.W, "compile-tokens", 8)
	ir := paradigm.NewBuffer(c.W, "compile-ir", 8)
	c.Reg.Register(paradigm.KindGeneralPump)
	c.W.Spawn("compile-sem", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			if _, ok := tokens.Get(t); !ok {
				ir.Close(t)
				return nil
			}
			c.Lib.Touch(t, comp, 20)
			t.Compute(16 * vclock.Millisecond)
			ir.Put(t, struct{}{})
		}
	}).Detach()
	c.Reg.Register(paradigm.KindGeneralPump)
	c.W.Spawn("compile-gen", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			if _, ok := ir.Get(t); !ok {
				return nil
			}
			c.Lib.Touch(t, comp, 18)
			t.Compute(12 * vclock.Millisecond)
		}
	}).Detach()

	// Compilation is a user-initiated background task (§3's priority
	// observation); its pipeline stages exchange work in coarse chunks.
	worker := c.W.Spawn("compile-worker", sim.PriorityBackground, func(t *sim.Thread) any {
		unit := 0
		for !stopped {
			c.Lib.Touch(t, comp, 26)
			t.Compute(24 * vclock.Millisecond)
			if unit%4 == 3 {
				t.BlockIO(24 * vclock.Millisecond) // read the next source file
			}
			if unit%8 == 7 {
				tokens.Put(t, struct{}{})
			}
			if unit%100 == 99 {
				c.gcWork.Add(t, func(g *sim.Thread) {
					paradigm.DeferTo(c.Reg, g, "finalize-transient", func(f *sim.Thread) {
						c.Lib.Touch(f, c.regions["core"], 8)
						f.Compute(800 * vclock.Microsecond)
					})
				})
			}
			unit++
		}
		tokens.Close(t)
		return unit
	})
	worker.Detach()
}
