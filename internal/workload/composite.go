package workload

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
)

// StartEverydayWork attaches several simultaneous activities to one Cedar
// world: typing into one window while a document formats in the
// background and the mouse wanders — the paper's observation that the
// benchmarks' 41-thread ceiling understates real sessions ("users employ
// two to three times this many in everyday work").
func (c *Cedar) StartEverydayWork() {
	c.StartKeyboard(3.0)
	c.StartMouse(15)
	c.StartScrolling(0.3)
	c.StartFormatter()
	c.StartPreviewer()
}

// CompositeBenchmark returns the everyday-work scenario as a runnable
// benchmark. It is not one of the paper's twelve table rows (so it is not
// in AllBenchmarks), but it is how the authors describe the systems
// actually being used.
func CompositeBenchmark() Benchmark {
	return Benchmark{
		Name:   "Everyday work (composite)",
		System: "Cedar",
		Build: func(w *sim.World, reg *paradigm.Registry) {
			p := DefaultCedarParams()
			p.IdleForkPeriod = 4 * p.IdleForkPeriod / 2 // user busy: idle forking halves
			c := NewCedar(w, reg, p)
			c.StartEverydayWork()
		},
	}
}
