package workload

import (
	"testing"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// testRC returns a short deterministic run configuration.
func testRC() RunConfig {
	rc := DefaultRunConfig()
	rc.Window = 10 * vclock.Second
	return rc
}

func runBench(t *testing.T, system, name string) *Result {
	t.Helper()
	b, err := FindBenchmark(system, name)
	if err != nil {
		t.Fatal(err)
	}
	return Run(b, testRC())
}

// within asserts measured is within factor f of target (f >= 1).
func within(t *testing.T, what string, measured, target, f float64) {
	t.Helper()
	if target == 0 {
		if measured != 0 {
			t.Errorf("%s = %v, want 0", what, measured)
		}
		return
	}
	if measured < target/f || measured > target*f {
		t.Errorf("%s = %.1f, want within %.1fx of %.1f", what, measured, f, target)
	}
}

func TestIdleCedarShape(t *testing.T) {
	r := runBench(t, "Cedar", "Idle Cedar")
	a := r.Analysis
	within(t, "forks/s", a.ForksPerSec(), 0.9, 2)
	within(t, "switches/s", a.SwitchesPerSec(), 132, 1.5)
	within(t, "waits/s", a.WaitsPerSec(), 121, 1.5)
	within(t, "ml-enters/s", a.MLEntersPerSec(), 414, 1.6)
	if a.TimeoutFraction() < 0.7 || a.TimeoutFraction() > 0.95 {
		t.Errorf("timeout fraction = %v, want ~0.82 (timeout-dominated idle)", a.TimeoutFraction())
	}
	if a.DistinctCVs < 15 || a.DistinctCVs > 35 {
		t.Errorf("distinct CVs = %d, want ~22", a.DistinctCVs)
	}
	if a.DistinctMLs < 400 || a.DistinctMLs > 700 {
		t.Errorf("distinct MLs = %d, want ~554", a.DistinctMLs)
	}
	// §3: max concurrent threads never exceeded 41 in the benchmarks.
	if a.MaxLive > 50 {
		t.Errorf("max live threads = %d, want <= ~41", a.MaxLive)
	}
	// Contention is very low in Cedar (0.01%-0.1%).
	if a.ContentionFraction() > 0.005 {
		t.Errorf("contention = %v, want < 0.5%%", a.ContentionFraction())
	}
}

func TestKeyboardRaisesEverything(t *testing.T) {
	idle := runBench(t, "Cedar", "Idle Cedar").Analysis
	kb := runBench(t, "Cedar", "Keyboard input").Analysis
	if kb.ForksPerSec() < 3*idle.ForksPerSec() {
		t.Errorf("keyboard forks %.1f not >> idle %.1f (one fork per keystroke)", kb.ForksPerSec(), idle.ForksPerSec())
	}
	if kb.MLEntersPerSec() < 3*idle.MLEntersPerSec() {
		t.Errorf("keyboard ML %.0f not >> idle %.0f", kb.MLEntersPerSec(), idle.MLEntersPerSec())
	}
	if kb.SwitchesPerSec() <= idle.SwitchesPerSec() {
		t.Error("keyboard should switch more than idle")
	}
	// Typing converts the wait mix from timeout-dominated to notified.
	if kb.TimeoutFraction() >= idle.TimeoutFraction() {
		t.Errorf("keyboard TO%% %.2f should drop below idle %.2f", kb.TimeoutFraction(), idle.TimeoutFraction())
	}
	if kb.DistinctCVs <= idle.DistinctCVs {
		t.Error("keyboard should wake more distinct CVs than idle")
	}
}

func TestMouseForksNothingExtra(t *testing.T) {
	mouse := runBench(t, "Cedar", "Mouse movement").Analysis
	idle := runBench(t, "Cedar", "Idle Cedar").Analysis
	// "simply moving the mouse around causes no threads to be forked":
	// fork rate stays at the idle system's level.
	within(t, "mouse forks/s", mouse.ForksPerSec(), idle.ForksPerSec(), 1.5)
	if mouse.MLEntersPerSec() < 1.5*idle.MLEntersPerSec() {
		t.Error("mouse should raise monitor traffic via eternal threads")
	}
}

func TestComputeTasksSuppressForking(t *testing.T) {
	idle := runBench(t, "Cedar", "Idle Cedar").Analysis
	for _, name := range []string{"Make program", "Compile"} {
		a := runBench(t, "Cedar", name).Analysis
		// Paper: a factor-3 decrease (0.9 -> 0.3). The short test window
		// is noisy, so assert a clear drop rather than the exact factor.
		if a.ForksPerSec() > 0.7*idle.ForksPerSec() {
			t.Errorf("%s forks %.2f/s, want well below idle %.2f (factor-3 decrease)", name, a.ForksPerSec(), idle.ForksPerSec())
		}
	}
}

func TestFormatterForksTwoGenerations(t *testing.T) {
	a := runBench(t, "Cedar", "Document formatting").Analysis
	if a.ForksPerSec() < 2 {
		t.Errorf("formatter forks %.1f/s, want ~3.6", a.ForksPerSec())
	}
	// §3: "none of our benchmarks exhibited forking generations greater
	// than 2" — generations are 0 (spawned), 1, 2 but never 3.
	if len(a.ForkGenerations) > 3 {
		t.Errorf("fork generations %v exceed depth 2", a.ForkGenerations)
	}
	if len(a.ForkGenerations) < 3 || a.ForkGenerations[2] == 0 {
		t.Errorf("formatter should fork grandchildren: %v", a.ForkGenerations)
	}
}

func TestCompileVisitsWidestMonitorSet(t *testing.T) {
	compile := runBench(t, "Cedar", "Compile").Analysis
	others := []string{"Idle Cedar", "Keyboard input", "Make program"}
	for _, name := range others {
		a := runBench(t, "Cedar", name).Analysis
		if compile.DistinctMLs <= a.DistinctMLs {
			t.Errorf("compile distinct MLs %d should exceed %s's %d", compile.DistinctMLs, name, a.DistinctMLs)
		}
	}
	if compile.DistinctMLs < 2000 {
		t.Errorf("compile distinct MLs = %d, want ~2900", compile.DistinctMLs)
	}
}

func TestGVXIdleShape(t *testing.T) {
	a := runBench(t, "GVX", "Idle GVX").Analysis
	within(t, "waits/s", a.WaitsPerSec(), 32, 1.5)
	within(t, "ml-enters/s", a.MLEntersPerSec(), 366, 1.5)
	if a.ForksPerSec() != 0 {
		t.Errorf("GVX forks %.2f/s, want 0", a.ForksPerSec())
	}
	if a.TimeoutFraction() < 0.95 {
		t.Errorf("GVX idle TO%% = %v, want ~0.99", a.TimeoutFraction())
	}
	if a.DistinctCVs > 10 {
		t.Errorf("GVX distinct CVs = %d, want ~5 (shared CVs)", a.DistinctCVs)
	}
	if a.DistinctMLs > 80 {
		t.Errorf("GVX distinct MLs = %d, want ~48", a.DistinctMLs)
	}
}

func TestGVXNeverForks(t *testing.T) {
	for _, name := range []string{"Keyboard input", "Mouse movement", "Window scrolling"} {
		a := runBench(t, "GVX", name).Analysis
		if a.Forks != 0 {
			t.Errorf("GVX %s forked %d times; GVX never forks for UI activity", name, a.Forks)
		}
	}
}

func TestGVXKeyboardGoesNotified(t *testing.T) {
	idle := runBench(t, "GVX", "Idle GVX").Analysis
	kb := runBench(t, "GVX", "Keyboard input").Analysis
	if kb.TimeoutFraction() > 0.7 {
		t.Errorf("GVX keyboard TO%% = %v, want to collapse toward ~0.42", kb.TimeoutFraction())
	}
	if kb.MLEntersPerSec() < 2.5*idle.MLEntersPerSec() {
		t.Errorf("GVX keyboard ML %.0f not >> idle %.0f", kb.MLEntersPerSec(), idle.MLEntersPerSec())
	}
}

func TestGVXScrollContention(t *testing.T) {
	scroll := runBench(t, "GVX", "Window scrolling").Analysis
	idle := runBench(t, "GVX", "Idle GVX").Analysis
	// §3: GVX contention is "sometimes significantly higher ... than in
	// Cedar, occurring 0.4% of the time when scrolling".
	if scroll.ContentionFraction() <= idle.ContentionFraction() {
		t.Errorf("scroll contention %v should exceed idle %v", scroll.ContentionFraction(), idle.ContentionFraction())
	}
	if scroll.ContentionFraction() < 0.0005 {
		t.Errorf("scroll contention %v too low to be visible (want ~0.4%%)", scroll.ContentionFraction())
	}
	cedarScroll := runBench(t, "Cedar", "Window scrolling").Analysis
	if scroll.ContentionFraction() <= cedarScroll.ContentionFraction() {
		t.Errorf("GVX scroll contention %v should exceed Cedar's %v", scroll.ContentionFraction(), cedarScroll.ContentionFraction())
	}
}

func TestCedarVsGVXContrast(t *testing.T) {
	cedar := runBench(t, "Cedar", "Idle Cedar").Analysis
	gvx := runBench(t, "GVX", "Idle GVX").Analysis
	if cedar.SwitchesPerSec() < 2*gvx.SwitchesPerSec() {
		t.Errorf("Cedar switches %.0f should be several times GVX's %.0f", cedar.SwitchesPerSec(), gvx.SwitchesPerSec())
	}
	if cedar.WaitsPerSec() < 2*gvx.WaitsPerSec() {
		t.Errorf("Cedar waits %.0f should be several times GVX's %.0f", cedar.WaitsPerSec(), gvx.WaitsPerSec())
	}
	if cedar.DistinctMLs < 5*gvx.DistinctMLs {
		t.Errorf("Cedar monitor population %d should dwarf GVX's %d", cedar.DistinctMLs, gvx.DistinctMLs)
	}
}

func TestPriorityLevelUsage(t *testing.T) {
	cedar := runBench(t, "Cedar", "Keyboard input").Analysis
	// Cedar: level 5 unused, level 7 = Notifier (interrupt handling).
	if cedar.ExecByPriority[5] != 0 {
		t.Errorf("Cedar priority 5 consumed %v, want 0 (unused level)", cedar.ExecByPriority[5])
	}
	if cedar.ExecByPriority[7] == 0 {
		t.Error("Cedar priority 7 (Notifier) consumed nothing")
	}
	gvx := runBench(t, "GVX", "Keyboard input").Analysis
	// GVX: the opposite — 7 unused, 5 = Notifier; bulk of time at 3.
	if gvx.ExecByPriority[7] != 0 {
		t.Errorf("GVX priority 7 consumed %v, want 0", gvx.ExecByPriority[7])
	}
	if gvx.ExecByPriority[5] == 0 {
		t.Error("GVX priority 5 (Notifier) consumed nothing")
	}
	if gvx.CPUShareOfPriority(3) < 0.3 {
		t.Errorf("GVX priority 3 share = %v, want dominant", gvx.CPUShareOfPriority(3))
	}
}

func TestExecutionIntervalDistribution(t *testing.T) {
	a := runBench(t, "Cedar", "Idle Cedar").Analysis
	short := a.Intervals.FractionCount(0, 5*vclock.Millisecond)
	if short < 0.5 {
		t.Errorf("fraction of intervals in 0-5ms = %v, want majority (~75%%)", short)
	}
	// "Between 20% and 50% of the total execution time ... is
	// accumulated by threads running for periods of 45 to 50 ms."
	// Our quantum-length intervals land just above 50 ms because the
	// context-switch cost is charged inside the interval, so we measure
	// the 45-55 ms band around the quantum.
	long := a.Intervals.FractionTotal(45*vclock.Millisecond, 55*vclock.Millisecond)
	if long < 0.1 || long > 0.7 {
		t.Errorf("execution-time share of quantum-length intervals = %v, want ~0.2-0.5", long)
	}
}

func TestDeterministicRuns(t *testing.T) {
	b, err := FindBenchmark("Cedar", "Keyboard input")
	if err != nil {
		t.Fatal(err)
	}
	rc := testRC()
	a1 := Run(b, rc).Analysis
	a2 := Run(b, rc).Analysis
	if a1.Switches != a2.Switches || a1.MLEnters != a2.MLEnters || a1.Waits != a2.Waits {
		t.Errorf("identical seeds diverged: %+v vs %+v", a1.Switches, a2.Switches)
	}
	rc.Seed = 99
	a3 := Run(b, rc).Analysis
	if a3.MLEnters == a1.MLEnters && a3.Switches == a1.Switches && a3.Forks == a1.Forks {
		t.Error("different seeds produced identical counts (suspicious)")
	}
}

func TestParadigmCensusPopulated(t *testing.T) {
	r := runBench(t, "Cedar", "Keyboard input")
	reg := r.Registry
	for _, k := range []paradigm.Kind{
		paradigm.KindDeferWork, paradigm.KindGeneralPump, paradigm.KindSleeper,
		paradigm.KindSerializer, paradigm.KindTaskRejuvenate, paradigm.KindOneShot,
		paradigm.KindEncapsulatedFork,
	} {
		if reg.Count(k) == 0 {
			t.Errorf("paradigm %v not represented in the Cedar world", k)
		}
	}
	// Defer work should be the most common category, as in Table 4.
	if reg.Count(paradigm.KindDeferWork) <= reg.Count(paradigm.KindSerializer) {
		t.Errorf("defer work (%d) should dominate serializers (%d)",
			reg.Count(paradigm.KindDeferWork), reg.Count(paradigm.KindSerializer))
	}
}

func TestFindBenchmark(t *testing.T) {
	if _, err := FindBenchmark("Cedar", "Idle Cedar"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindBenchmark("VMS", "Idle"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if len(AllBenchmarks()) != 12 {
		t.Fatalf("AllBenchmarks = %d, want 12", len(AllBenchmarks()))
	}
}

func TestLibraryBounds(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	lib := NewLibrary(w, "lib", 10)
	if lib.Size() != 10 {
		t.Fatalf("size = %d", lib.Size())
	}
	th := w.Spawn("t", sim.PriorityNormal, func(t *sim.Thread) any {
		lib.Touch(t, Region{0, 10}, 3)
		lib.Touch(t, Region{20, 30}, 1) // out of range: panics
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil {
		t.Fatal("out-of-range region should panic")
	}
	if (Region{2, 7}).Span() != 5 {
		t.Fatal("span wrong")
	}
}

// TestThreadClasses checks §3's dynamic classification on the busiest
// forking benchmark: eternal threads number ~35, transient threads
// dominate the exits, and "the average lifetime for non-eternal threads
// is well under 1 second".
func TestThreadClasses(t *testing.T) {
	a := runBench(t, "Cedar", "Document formatting").Analysis
	// The formatting world adds its service sleepers to the ~35 idle
	// eternals (the paper: "users employ two to three times this many
	// [41] in everyday work").
	if a.EternalCount < 25 || a.EternalCount > 70 {
		t.Errorf("eternal threads = %d, want ~35-55", a.EternalCount)
	}
	if a.ExitedCount == 0 {
		t.Fatal("no transients exited")
	}
	if a.MeanExitedLifetime >= vclock.Second {
		t.Errorf("mean non-eternal lifetime = %v, want well under 1s", a.MeanExitedLifetime)
	}
	if frac := float64(a.TransientCount) / float64(a.ExitedCount); frac < 0.9 {
		t.Errorf("transient fraction of exits = %.2f, want ~1.0", frac)
	}
}
