package workload

import (
	"testing"

	"repro/internal/vclock"
)

// TestEverydayWorkSoak runs the composite everyday-work scenario for two
// virtual minutes — far past every periodic cycle in the models — and
// checks the system stays healthy: no deadlock, thread population within
// the paper's everyday bound (2-3x the benchmarks' 41), activity from
// every subsystem, and timeout-dominated background behavior still
// visible under the combined load.
func TestEverydayWorkSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rc := DefaultRunConfig()
	rc.Window = 2 * vclock.Minute
	r := Run(CompositeBenchmark(), rc)
	a := r.Analysis

	if a.MaxLive > 3*41 {
		t.Errorf("max live threads = %d, want <= ~123 (2-3x the benchmark ceiling)", a.MaxLive)
	}
	if a.MaxLive < 41 {
		t.Errorf("max live threads = %d; everyday work should exceed the single-benchmark ceiling", a.MaxLive)
	}
	if a.ForksPerSec() < 3 {
		t.Errorf("forks/s = %.1f; keyboard+formatter should fork steadily", a.ForksPerSec())
	}
	if a.MLEntersPerSec() < 2000 {
		t.Errorf("ML-enters/s = %.0f; combined load should be heavy", a.MLEntersPerSec())
	}
	if a.TimeoutFraction() < 0.2 || a.TimeoutFraction() > 0.9 {
		t.Errorf("timeout fraction = %v; expected a mixed regime", a.TimeoutFraction())
	}
	// §3 invariants hold even under composite load.
	if len(a.ForkGenerations) > 3 {
		t.Errorf("fork generations %v exceed depth 2", a.ForkGenerations)
	}
	if a.MeanExitedLifetime >= vclock.Second {
		t.Errorf("mean transient lifetime = %v, want well under 1s", a.MeanExitedLifetime)
	}
	// Contention stays Cedar-low even with everything running.
	if a.ContentionFraction() > 0.01 {
		t.Errorf("contention = %v, want < 1%%", a.ContentionFraction())
	}
}

// TestEverydayWorkDeterministic: the composite scenario reproduces
// exactly across runs with one seed and diverges with another.
func TestEverydayWorkDeterministic(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Window = 20 * vclock.Second
	a := Run(CompositeBenchmark(), rc).Analysis
	b := Run(CompositeBenchmark(), rc).Analysis
	if a.MLEnters != b.MLEnters || a.Switches != b.Switches || a.Forks != b.Forks {
		t.Fatalf("same seed diverged: %d/%d %d/%d %d/%d",
			a.MLEnters, b.MLEnters, a.Switches, b.Switches, a.Forks, b.Forks)
	}
	rc.Seed = 777
	c := Run(CompositeBenchmark(), rc).Analysis
	if c.MLEnters == a.MLEnters && c.Switches == a.Switches {
		t.Error("different seed produced identical counts")
	}
}
