package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// runEcho drives one quick-scale W1 world to quiescence.
func runEcho(t *testing.T, seed int64) *LoadStats {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: seed})
	defer w.Shutdown()
	p := EchoParams{Sessions: 200, Requests: 2000, Rate: 4000, Service: 5 * vclock.Microsecond}
	e := StartEcho(w, p)
	if got := w.Run(vclock.Time(0).Add(10 * vclock.Second)); got != sim.OutcomeQuiescent {
		t.Fatalf("echo run ended %v, want quiescent", got)
	}
	return e.Finish()
}

func TestEchoServesOfferedLoad(t *testing.T) {
	s := runEcho(t, 1)
	if s.Offered != 2000 || s.Completed != 2000 {
		t.Fatalf("offered=%d completed=%d, want 2000/2000", s.Offered, s.Completed)
	}
	if s.Threads != 200 {
		t.Fatalf("threads = %d, want 200", s.Threads)
	}
	if s.Latency.Count() != 2000 {
		t.Fatalf("latency samples = %d, want 2000", s.Latency.Count())
	}
	// Every latency includes at least the service time.
	if min := s.Latency.Percentile(0); min < 5*vclock.Microsecond {
		t.Fatalf("min latency %v < service time", min)
	}
	if s.Window <= 0 || s.Throughput() <= 0 {
		t.Fatalf("window=%v throughput=%v", s.Window, s.Throughput())
	}
}

func TestEchoDeterministic(t *testing.T) {
	a, b := runEcho(t, 7), runEcho(t, 7)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := runEcho(t, 8)
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical stats: %s", a)
	}
}

func TestPipelineServesOfferedLoad(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	defer w.Shutdown()
	p := PipelineParams{Pipelines: 8, Stages: 4, Buffer: 4, Requests: 1000, Rate: 1000, StageCost: 10 * vclock.Microsecond}
	pl := StartPipeline(w, p)
	if got := w.Run(vclock.Time(0).Add(20 * vclock.Second)); got != sim.OutcomeQuiescent {
		t.Fatalf("pipeline run ended %v, want quiescent (shutdown must ripple down the stages)", got)
	}
	s := pl.Finish()
	if s.Completed != 1000 {
		t.Fatalf("completed = %d, want 1000", s.Completed)
	}
	if s.Threads != 8*4 {
		t.Fatalf("threads = %d, want 32", s.Threads)
	}
	// Four stages of compute bound the minimum end-to-end latency.
	if min := s.Latency.Percentile(0); min < 4*p.StageCost {
		t.Fatalf("min latency %v < 4 stage costs", min)
	}
}

func TestMixedKeepsInteractiveFast(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1, SystemDaemon: true})
	defer w.Shutdown()
	p := MixedParams{
		Interactive: 32, Batch: 8, Requests: 1500, Rate: 1500,
		Service: 50 * vclock.Microsecond, BatchChunk: 200 * vclock.Microsecond,
		Horizon: 5 * vclock.Second,
	}
	m := StartMixed(w, p)
	w.Run(vclock.Time(0).Add(p.Horizon))
	s := m.Finish()
	if s.Completed != 1500 {
		t.Fatalf("interactive completed = %d, want 1500 (batch pool must not starve PriorityHigh)", s.Completed)
	}
	if m.BatchChunks == 0 {
		t.Fatal("batch pool made no progress")
	}
	// Strict priority: interactive p95 stays within a few batch chunks
	// even though the batch pool would soak every cycle.
	if p95 := s.Latency.Percentile(0.95); p95 > 5*vclock.Millisecond {
		t.Fatalf("interactive p95 = %v under batch load", p95)
	}
}

func TestEchoParamValidation(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	defer w.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("StartEcho accepted zero sessions")
		}
	}()
	StartEcho(w, EchoParams{Sessions: 0, Requests: 1, Rate: 1})
}
