package workload

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
)

// A Preset is a reusable recipe for one fleet instance's world: what
// background population (if any) runs alongside the routed-request
// session pool. Presets let the cluster layer instantiate "a W1 echo
// world", "a Cedar workstation", or "a GVX workstation" by name without
// importing the model constructors, and they are deliberately cheap —
// the expensive static state (the session NameTable) is built once per
// fleet and shared.
//
//	w1-echo — a bare session pool, the W1 server with its arrival
//	          process lifted out into the cluster.
//	cedar   — Idle Cedar's full desktop population (§3's model) running
//	          under the routed sessions, so fleet requests compete with
//	          1993-era background activity.
//	gvx     — Idle GVX's leaner population, same idea.
type Preset struct {
	// Name identifies the preset in specs and CLI flags.
	Name string
	// Background populates paper-era background activity before the
	// session pool spawns; nil means none. Each instance gets a private
	// paradigm.Registry — the cluster aggregates latencies, not paradigm
	// census tables.
	Background func(w *sim.World)
}

// Presets returns the fleet world presets in presentation order.
func Presets() []Preset {
	return []Preset{
		{Name: "w1-echo"},
		{Name: "cedar", Background: benchmarkBackground("Cedar", "Idle Cedar")},
		{Name: "gvx", Background: benchmarkBackground("GVX", "Idle GVX")},
	}
}

// PresetNames returns the valid preset names, for flag validation.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// FindPreset returns the preset with the given name.
func FindPreset(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("workload: no preset %q (have %v)", name, PresetNames())
}

// benchmarkBackground adapts a Tables 1–3 benchmark Build into a preset
// background, with a registry the caller never sees.
func benchmarkBackground(system, name string) func(w *sim.World) {
	return func(w *sim.World) {
		b, err := FindBenchmark(system, name)
		if err != nil {
			panic(err)
		}
		b.Build(w, paradigm.NewRegistry())
	}
}
