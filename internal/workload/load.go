package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload/spec"
)

// This file holds the W-series open-loop load workloads: server-scale
// thread populations driven by Poisson arrivals, the regime the paper's
// interactive systems never reached but our ROADMAP points at. Unlike the
// closed-loop Cedar/GVX activities (a fixed population of eternal threads
// pacing themselves), an open-loop generator injects requests on its own
// schedule whether or not the system keeps up, so queueing delay — not
// just service time — shows up in the latency percentiles.
//
//	W1 (Echo)     — a multi-user echo server: one session thread per
//	                user, arrivals fan out uniformly across sessions.
//	W2 (Pipeline) — slack-process pipelines (§5.2): stages at descending
//	                priority connected by monitor-based bounded buffers,
//	                so downstream stages batch work the way the paper's
//	                slack process batches screen updates.
//	W3 (Mixed)    — interactive echo sessions at high priority over a
//	                pool of low-priority batch compute loops (§6.2's
//	                priority structure under load).

// LoadStats summarizes one open-loop load run. All times are virtual.
type LoadStats struct {
	// Offered and Completed count requests injected and served.
	Offered   int64
	Completed int64
	// Threads is the number of worker threads the workload created.
	Threads int
	// Window is the virtual time from the first injection to the last
	// completion (or the run horizon, if the system never drained).
	Window vclock.Duration
	// Latency records per-request end-to-end latency (arrival to
	// completion, queueing included).
	Latency stats.LatencyRecorder
}

// Throughput returns completed requests per virtual second, or 0 for an
// empty window.
func (s *LoadStats) Throughput() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Window.Seconds()
}

// String renders the stats one one line, percentiles included.
func (s *LoadStats) String() string {
	return fmt.Sprintf("offered=%d completed=%d threads=%d window=%s rate=%.0f/s lat[%s]",
		s.Offered, s.Completed, s.Threads, s.Window, s.Throughput(), s.Latency.String())
}

// expDelay draws one exponential inter-arrival gap (mean 1/rate seconds)
// from the generator's derived stream, quantized to the simulator's
// microsecond clock with a 1us floor so same-instant arrival storms can't
// form by rounding. The stream comes from World.DeriveRand, not
// World.Rand: an open-loop generator is outside code driving the world,
// and drawing from the live world stream would entangle the arrival
// process with the SystemDaemon's victim choices — and, in a fleet, one
// instance's arrivals with its siblings'.
func expDelay(rng *rand.Rand, rate float64) vclock.Duration {
	d := vclock.Duration(rng.ExpFloat64() / rate * 1e6)
	if d < vclock.Microsecond {
		d = vclock.Microsecond
	}
	return d
}

// ---------------------------------------------------------------- W1 ---

// EchoParams configures the W1 open-loop echo server.
type EchoParams struct {
	// Sessions is the number of server session threads (one per user).
	Sessions int
	// Requests is the total number of requests to inject.
	Requests int64
	// Rate is the aggregate Poisson arrival rate, requests per virtual
	// second, fanned uniformly across sessions.
	Rate float64
	// Service is the CPU charged per request.
	Service vclock.Duration
	// Priority is the session threads' priority.
	Priority sim.Priority
	// Start delays the first arrival, giving the spawned sessions time
	// to park; 0 selects a bound derived from the population size.
	Start vclock.Duration
}

// DefaultEchoParams returns the full-scale W1 operating point: ten
// thousand live session threads serving one hundred thousand requests.
func DefaultEchoParams() EchoParams {
	return EchoParams{
		Sessions: 10_000,
		Requests: 100_000,
		Rate:     5000,
		Service:  5 * vclock.Microsecond,
		Priority: sim.PriorityNormal,
	}
}

// echoSession is one user's server-side thread plus its request queue
// (arrival timestamps). The queue is driver-owned state: the driver and
// the session mutate it under the simulator's one-goroutine-at-a-time
// discipline, modeling an interrupt handler posting work to a server
// thread.
type echoSession struct {
	th   *sim.Thread
	q    []vclock.Time
	head int
}

// EchoServer is the W1 workload instance.
type EchoServer struct {
	w        *sim.World
	p        EchoParams
	rng      *rand.Rand
	Stats    LoadStats
	sessions []*echoSession
	injected int64
	closed   bool
	firstAt  vclock.Time
	lastDone vclock.Time
	tap      RequestTap
	cohort   string
	replay   []spec.Entry
}

// StartEcho spawns the session population and schedules the arrival
// process. Drive the world with Run until it quiesces (every session
// exits once the offered load is injected and drained), then read Stats.
func StartEcho(w *sim.World, p EchoParams) *EchoServer {
	return startEcho(w, p, nil, "echo", nil)
}

// startEcho is the shared constructor behind StartEcho and the spec
// path. A non-nil replay drives arrivals from the recorded entries —
// same timestamps, same session picks, no RNG draws — producing the
// identical event population the generated run had; tap observes each
// injection for trace recording.
func startEcho(w *sim.World, p EchoParams, tap RequestTap, cohort string, replay []spec.Entry) *EchoServer {
	if replay != nil {
		p.Requests = int64(len(replay))
		p.Start = vclock.Duration(replay[0].AtUS)
	}
	if p.Sessions < 1 || p.Requests < 1 || p.Rate <= 0 {
		panic(fmt.Sprintf("workload: bad EchoParams %+v", p))
	}
	if p.Service <= 0 {
		p.Service = 5 * vclock.Microsecond
	}
	if !p.Priority.Valid() {
		p.Priority = sim.PriorityNormal
	}
	e := &EchoServer{w: w, p: p, rng: w.DeriveRand("workload.echo"),
		tap: tap, cohort: cohort, replay: replay}
	e.Stats.Threads = p.Sessions
	for i := 0; i < p.Sessions; i++ {
		s := &echoSession{}
		// Thread names keep the historical "echo-" prefix whatever the
		// cohort label says: names feed the profiler's per-thread books
		// and must not drift when a spec renames its one cohort.
		s.th = w.Spawn(fmt.Sprintf("echo-%d", i), p.Priority, e.sessionBody(s))
		e.sessions = append(e.sessions, s)
	}
	start := p.Start
	if start <= 0 {
		// Every freshly spawned session runs once (paying the switch
		// cost) before parking; begin injecting after that stampede.
		perPark := w.Config().SwitchCost + 10*vclock.Microsecond
		start = vclock.Duration(p.Sessions)*perPark + 100*vclock.Millisecond
	}
	w.After(start, e.arrive)
	return e
}

// arrive injects one request (driver context) and schedules the next.
func (e *EchoServer) arrive() {
	if e.injected >= e.p.Requests {
		return
	}
	idx := 0
	if e.replay != nil {
		idx = e.replay[e.injected].Session
	} else {
		idx = e.rng.Intn(len(e.sessions))
	}
	s := e.sessions[idx]
	now := e.w.Now()
	if e.Stats.Offered == 0 {
		e.firstAt = now
	}
	s.q = append(s.q, now)
	e.Stats.Offered++
	e.injected++
	if e.tap != nil {
		e.tap(now, e.cohort, idx, e.p.Service)
	}
	e.w.WakeIfBlocked(s.th, nil)
	if e.injected < e.p.Requests {
		e.w.After(e.nextGap(now), e.arrive)
	} else {
		e.close()
	}
}

// nextGap returns the delay to the next arrival: a fresh Poisson draw,
// or — under replay — the recorded gap to the next entry.
func (e *EchoServer) nextGap(now vclock.Time) vclock.Duration {
	if e.replay != nil {
		return vclock.Time(0).Add(vclock.Duration(e.replay[e.injected].AtUS)).Sub(now)
	}
	return expDelay(e.rng, e.p.Rate)
}

// close wakes every idle session so those with nothing left to serve can
// observe the shutdown and exit, letting the world quiesce.
func (e *EchoServer) close() {
	e.closed = true
	for _, s := range e.sessions {
		e.w.WakeIfBlocked(s.th, nil)
	}
}

func (e *EchoServer) sessionBody(s *echoSession) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			if s.head == len(s.q) {
				s.q, s.head = s.q[:0], 0
				if e.closed {
					return nil
				}
				t.Block(sim.BlockCV)
				continue
			}
			arrival := s.q[s.head]
			s.head++
			t.Compute(e.p.Service)
			e.Stats.Completed++
			e.Stats.Latency.Add(t.Now().Sub(arrival))
			e.lastDone = t.Now()
		}
	}
}

// Finish stamps the measurement window after the driving Run returns.
func (e *EchoServer) Finish() *LoadStats {
	if e.Stats.Completed > 0 {
		e.Stats.Window = e.lastDone.Sub(e.firstAt)
	}
	return &e.Stats
}

// ---------------------------------------------------------------- W2 ---

// PipelineParams configures the W2 slack-process pipelines.
type PipelineParams struct {
	// Pipelines is the number of independent stage chains.
	Pipelines int
	// Stages is the number of threads per chain. Stage priorities descend
	// from PriorityHigh toward PriorityBackground along the chain — the
	// §5.2 slack-process shape, where the consumer runs below its
	// producer so work batches up between dispatches.
	Stages int
	// Buffer is the bounded-buffer capacity between adjacent stages.
	Buffer int
	// Requests is the total number of items injected.
	Requests int64
	// Rate is the aggregate Poisson injection rate per virtual second.
	Rate float64
	// StageCost is the CPU charged at each stage.
	StageCost vclock.Duration
}

// DefaultPipelineParams returns the full-scale W2 operating point.
func DefaultPipelineParams() PipelineParams {
	return PipelineParams{
		Pipelines: 64,
		Stages:    4,
		Buffer:    8,
		Requests:  25_000,
		Rate:      1000,
		StageCost: 10 * vclock.Microsecond,
	}
}

// loadBuffer is a monitor-based bounded buffer of arrival timestamps —
// the §4.2 serializer paradigm under a cap, built from one monitor and
// its two CVs exactly as the paper's systems built theirs.
type loadBuffer struct {
	m        *monitor.Monitor
	notEmpty *monitor.Cond
	notFull  *monitor.Cond
	items    []vclock.Time
	cap      int
	closed   bool
}

func newLoadBuffer(w *sim.World, name string, capacity int) *loadBuffer {
	b := &loadBuffer{m: monitor.New(w, name), cap: capacity}
	b.notEmpty = b.m.NewCond(name + ".notEmpty")
	b.notFull = b.m.NewCond(name + ".notFull")
	return b
}

func (b *loadBuffer) put(t *sim.Thread, v vclock.Time) {
	b.m.Enter(t)
	for len(b.items) >= b.cap {
		b.notFull.Wait(t)
	}
	b.items = append(b.items, v)
	b.notEmpty.Notify(t)
	b.m.Exit(t)
}

func (b *loadBuffer) get(t *sim.Thread) (vclock.Time, bool) {
	b.m.Enter(t)
	for len(b.items) == 0 && !b.closed {
		b.notEmpty.Wait(t)
	}
	if len(b.items) == 0 {
		b.m.Exit(t)
		return 0, false
	}
	v := b.items[0]
	b.items = b.items[1:]
	b.notFull.Notify(t)
	b.m.Exit(t)
	return v, true
}

func (b *loadBuffer) close(t *sim.Thread) {
	b.m.Enter(t)
	b.closed = true
	b.notEmpty.Broadcast(t)
	b.m.Exit(t)
}

// Pipeline is the W2 workload instance.
type Pipeline struct {
	w        *sim.World
	p        PipelineParams
	rng      *rand.Rand
	Stats    LoadStats
	inboxes  []*pipeInbox
	injected int64
	closed   bool
	firstAt  vclock.Time
	lastDone vclock.Time
	tap      RequestTap
	replay   []spec.Entry
}

// pipeInbox is the driver-to-stage-0 handoff of one chain, interrupt
// style like W1's sessions; stages beyond 0 hand off through monitors.
type pipeInbox struct {
	th   *sim.Thread
	q    []vclock.Time
	head int
}

// stagePriority maps a stage index to its descending priority.
func stagePriority(i int) sim.Priority {
	p := sim.PriorityHigh - sim.Priority(i)
	if p < sim.PriorityBackground {
		p = sim.PriorityBackground
	}
	return p
}

// StartPipeline spawns the stage chains and schedules the arrival
// process. Drive the world with Run until it quiesces.
func StartPipeline(w *sim.World, p PipelineParams) *Pipeline {
	return startPipeline(w, p, nil, nil)
}

// startPipeline is the shared constructor behind StartPipeline and the
// spec path; see startEcho for the tap/replay contract. The recorded
// service demand is the per-stage grain (each request costs Stages of
// them end to end).
func startPipeline(w *sim.World, p PipelineParams, tap RequestTap, replay []spec.Entry) *Pipeline {
	if replay != nil {
		p.Requests = int64(len(replay))
	}
	if p.Pipelines < 1 || p.Stages < 2 || p.Requests < 1 || p.Rate <= 0 {
		panic(fmt.Sprintf("workload: bad PipelineParams %+v", p))
	}
	if p.Buffer < 1 {
		p.Buffer = 8
	}
	if p.StageCost <= 0 {
		p.StageCost = 10 * vclock.Microsecond
	}
	pl := &Pipeline{w: w, p: p, rng: w.DeriveRand("workload.pipeline"),
		tap: tap, replay: replay}
	pl.Stats.Threads = p.Pipelines * p.Stages
	for i := 0; i < p.Pipelines; i++ {
		bufs := make([]*loadBuffer, p.Stages-1)
		for j := range bufs {
			bufs[j] = newLoadBuffer(w, fmt.Sprintf("pipe-%d-buf-%d", i, j), p.Buffer)
		}
		in := &pipeInbox{}
		in.th = w.Spawn(fmt.Sprintf("pipe-%d-stage-0", i), stagePriority(0), pl.sourceBody(in, bufs[0]))
		pl.inboxes = append(pl.inboxes, in)
		for j := 1; j < p.Stages; j++ {
			var out *loadBuffer
			if j < p.Stages-1 {
				out = bufs[j]
			}
			w.Spawn(fmt.Sprintf("pipe-%d-stage-%d", i, j), stagePriority(j), pl.stageBody(bufs[j-1], out))
		}
	}
	start := vclock.Duration(0)
	if replay != nil {
		start = vclock.Duration(replay[0].AtUS)
	} else {
		perPark := w.Config().SwitchCost + 20*vclock.Microsecond
		start = vclock.Duration(p.Pipelines*p.Stages)*perPark + 100*vclock.Millisecond
	}
	w.After(start, pl.arrive)
	return pl
}

func (pl *Pipeline) arrive() {
	if pl.injected >= pl.p.Requests {
		return
	}
	idx := 0
	if pl.replay != nil {
		idx = pl.replay[pl.injected].Session
	} else {
		idx = pl.rng.Intn(len(pl.inboxes))
	}
	in := pl.inboxes[idx]
	now := pl.w.Now()
	if pl.Stats.Offered == 0 {
		pl.firstAt = now
	}
	in.q = append(in.q, now)
	pl.Stats.Offered++
	pl.injected++
	if pl.tap != nil {
		pl.tap(now, "pipeline", idx, pl.p.StageCost)
	}
	pl.w.WakeIfBlocked(in.th, nil)
	if pl.injected < pl.p.Requests {
		var gap vclock.Duration
		if pl.replay != nil {
			gap = vclock.Time(0).Add(vclock.Duration(pl.replay[pl.injected].AtUS)).Sub(now)
		} else {
			gap = expDelay(pl.rng, pl.p.Rate)
		}
		pl.w.After(gap, pl.arrive)
	} else {
		pl.closed = true
		for _, in := range pl.inboxes {
			pl.w.WakeIfBlocked(in.th, nil)
		}
	}
}

// sourceBody drains the inbox into the chain's first buffer, closing it
// when the offered load ends so shutdown ripples down the stages.
func (pl *Pipeline) sourceBody(in *pipeInbox, out *loadBuffer) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			if in.head == len(in.q) {
				in.q, in.head = in.q[:0], 0
				if pl.closed {
					out.close(t)
					return nil
				}
				t.Block(sim.BlockCV)
				continue
			}
			v := in.q[in.head]
			in.head++
			t.Compute(pl.p.StageCost)
			out.put(t, v)
		}
	}
}

// stageBody computes over items from in; a nil out marks the final stage,
// which completes requests and records their end-to-end latency.
func (pl *Pipeline) stageBody(in, out *loadBuffer) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			v, ok := in.get(t)
			if !ok {
				if out != nil {
					out.close(t)
				}
				return nil
			}
			t.Compute(pl.p.StageCost)
			if out != nil {
				out.put(t, v)
				continue
			}
			pl.Stats.Completed++
			pl.Stats.Latency.Add(t.Now().Sub(v))
			pl.lastDone = t.Now()
		}
	}
}

// Finish stamps the measurement window after the driving Run returns.
func (pl *Pipeline) Finish() *LoadStats {
	if pl.Stats.Completed > 0 {
		pl.Stats.Window = pl.lastDone.Sub(pl.firstAt)
	}
	return &pl.Stats
}

// ---------------------------------------------------------------- W3 ---

// MixedParams configures the W3 interactive-over-batch mix.
type MixedParams struct {
	// Interactive is the number of high-priority echo sessions.
	Interactive int
	// Batch is the number of background compute loops.
	Batch int
	// Requests is the total interactive requests injected.
	Requests int64
	// Rate is the aggregate interactive arrival rate per virtual second.
	Rate float64
	// Service is the CPU charged per interactive request.
	Service vclock.Duration
	// BatchChunk is one batch compute grain; chunks per virtual second
	// is the batch throughput metric.
	BatchChunk vclock.Duration
	// Horizon bounds the run; batch threads never exit on their own.
	Horizon vclock.Duration
}

// DefaultMixedParams returns the full-scale W3 operating point.
func DefaultMixedParams() MixedParams {
	return MixedParams{
		Interactive: 256,
		Batch:       64,
		Requests:    40_000,
		Rate:        2000,
		Service:     50 * vclock.Microsecond,
		BatchChunk:  200 * vclock.Microsecond,
		Horizon:     30 * vclock.Second,
	}
}

// Mixed is the W3 workload instance: W1's echo machinery at PriorityHigh
// sharing the CPUs with an always-ready batch pool at PriorityBackground,
// the §6.2 priority structure under open-loop load.
type Mixed struct {
	Echo *EchoServer
	// BatchChunks counts completed batch grains; divide by the horizon
	// for batch throughput.
	BatchChunks int64
	stopped     bool
}

// StartMixed spawns both populations. Drive with Run to params.Horizon;
// the batch pool stays runnable forever, so the run ends at the horizon
// (interactive load should drain well before it).
func StartMixed(w *sim.World, p MixedParams) *Mixed {
	return startMixed(w, p, nil, "interactive", nil)
}

// startMixed is the shared constructor behind StartMixed and the spec
// path; tap/replay apply to the interactive echo half (the batch pool
// is closed-loop and has no arrival process to record).
func startMixed(w *sim.World, p MixedParams, tap RequestTap, cohort string, replay []spec.Entry) *Mixed {
	if replay != nil {
		p.Requests = int64(len(replay))
	}
	if p.Interactive < 1 || p.Batch < 0 || p.Requests < 1 || p.Rate <= 0 {
		panic(fmt.Sprintf("workload: bad MixedParams %+v", p))
	}
	if p.BatchChunk <= 0 {
		p.BatchChunk = 200 * vclock.Microsecond
	}
	m := &Mixed{}
	m.Echo = startEcho(w, EchoParams{
		Sessions: p.Interactive,
		Requests: p.Requests,
		Rate:     p.Rate,
		Service:  p.Service,
		Priority: sim.PriorityHigh,
	}, tap, cohort, replay)
	m.Echo.Stats.Threads = p.Interactive + p.Batch
	for i := 0; i < p.Batch; i++ {
		w.Spawn(fmt.Sprintf("batch-%d", i), sim.PriorityBackground, func(t *sim.Thread) any {
			for !m.stopped {
				t.Compute(p.BatchChunk)
				m.BatchChunks++
			}
			return nil
		})
	}
	// End the run at the horizon: mark the batch pool done and stop, so
	// a single Run(horizon) suffices and Shutdown has little to unwind.
	w.At(vclock.Time(0).Add(p.Horizon), func() {
		m.stopped = true
	})
	return m
}

// Finish stamps the interactive window after the driving Run returns.
func (m *Mixed) Finish() *LoadStats {
	return m.Echo.Finish()
}
