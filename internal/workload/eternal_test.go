package workload

import (
	"testing"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func TestSpawnPokeables(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	lib := NewLibrary(w, "lib", 20)
	ps := SpawnPokeables(w, reg, lib, 3, "ui", sim.PriorityNormal, 2, Region{0, 20}, vclock.Millisecond)
	if len(ps) != 3 {
		t.Fatalf("pokeables = %d", len(ps))
	}
	w.At(vclock.Time(5*vclock.Millisecond), ps[0].PokeExternal)
	w.At(vclock.Time(6*vclock.Millisecond), ps[1].PokeExternal)
	w.At(vclock.Time(50*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
	if ps[0].Runs() != 1 || ps[1].Runs() != 1 || ps[2].Runs() != 0 {
		t.Fatalf("runs = %d %d %d", ps[0].Runs(), ps[1].Runs(), ps[2].Runs())
	}
}

func TestSpawnSleeperGroupTouchesLibrary(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	lib := NewLibrary(w, "lib", 10)
	g := SpawnSleeperGroup(w, reg, lib, "grp", 4, sim.PriorityNormal, 20*vclock.Millisecond, 2, Region{0, 10}, vclock.Millisecond)
	w.At(vclock.Time(100*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
	if g.Runs() < 8 {
		t.Fatalf("group runs = %d, want >= 8 (4 members x several periods)", g.Runs())
	}
	if reg.Count(paradigm.KindSleeper) == 0 {
		t.Fatal("sleepers not registered")
	}
}

func TestSpawnEternalsSpec(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	lib := NewLibrary(w, "lib", 10)
	ss := SpawnEternals(w, reg, lib, []EternalSpec{
		{Name: "e0", Pri: sim.PriorityLow, Period: 10 * vclock.Millisecond, Touches: 1, Region: Region{0, 10}, Work: vclock.Millisecond},
	})
	w.At(vclock.Time(55*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
	if ss[0].Runs() < 4 {
		t.Fatalf("eternal runs = %d", ss[0].Runs())
	}
}
