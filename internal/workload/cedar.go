package workload

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Event kinds flowing through the Cedar input pipeline.
type inputEvent struct {
	kind  string      // "key", "mouse", "scroll"
	count int         // coalesced count for mouse batches
	born  vclock.Time // hardware arrival, for echo-latency measurement
}

// CedarParams are the calibration knobs of the Cedar model. Defaults are
// tuned so the idle system and the eight benchmarks land near the paper's
// Tables 1–3 operating points; DESIGN.md documents the reasoning.
type CedarParams struct {
	LibrarySize int

	// Eternal population.
	TimeoutSleepers int             // timeout-driven eternal sleepers
	SleeperPeriods  vclock.Duration // mean period (spread deterministically)
	SleeperTouches  int
	PumpChains      int
	ChainPeriod     vclock.Duration
	UIPokeables     int
	UITouches       int
	UIWork          vclock.Duration

	// Background work (45–50 ms execution-interval peak).
	Scavengers     int
	ScavengerDelay vclock.Duration
	ScavengerWork  vclock.Duration

	// Idle transient forking ("about once every 2 seconds", 2 generations).
	IdleForkPeriod vclock.Duration

	// Keystroke echo path.
	EchoTouches   int
	EchoWork      vclock.Duration
	UIPokesPerKey int // UI sleepers poked per keystroke (each poked twice)

	// Mouse handling.
	MouseTouches int
	MouseUIPokes int

	// NotifierPriority overrides the Notifier's priority (default
	// sim.PriorityInterrupt — Cedar's level 7). Lowering it is the F12
	// ablation: what responsiveness costs when the input path is not
	// privileged.
	NotifierPriority sim.Priority
	// FormatterPriority overrides the formatting worker's priority
	// (default sim.PriorityBackground — §3's "user-initiated tasks").
	FormatterPriority sim.Priority

	// Scrolling.
	ScrollTouches   int
	ScrollWork      vclock.Duration
	ScrollUIPokes   int
	ScrollForkEvery int // fork a repaint transient every Nth scroll
}

// DefaultCedarParams returns the calibrated defaults.
func DefaultCedarParams() CedarParams {
	return CedarParams{
		LibrarySize:     3400,
		TimeoutSleepers: 12,
		SleeperPeriods:  145 * vclock.Millisecond,
		SleeperTouches:  2,
		PumpChains:      4,
		ChainPeriod:     150 * vclock.Millisecond,
		UIPokeables:     8,
		UITouches:       8,
		UIWork:          250 * vclock.Microsecond,
		Scavengers:      2,
		ScavengerDelay:  2500 * vclock.Millisecond,
		ScavengerWork:   150 * vclock.Millisecond,
		IdleForkPeriod:  2 * vclock.Second,
		EchoTouches:     360,
		EchoWork:        1500 * vclock.Microsecond,
		UIPokesPerKey:   8,
		MouseTouches:    45,
		MouseUIPokes:    4,
		ScrollTouches:   1500,
		ScrollWork:      100 * vclock.Millisecond,
		ScrollUIPokes:   8,
		ScrollForkEvery: 3,
	}
}

// Cedar regions of the module library (see DESIGN.md): the idle core plus
// per-activity module sets, sized to land near Table 3's distinct-ML
// counts.
func (p CedarParams) regions() map[string]Region {
	return map[string]Region{
		"core":    {0, 520},
		"text":    {520, 940},
		"cursor":  {520, 740},
		"window":  {520, 800},
		"ui":      {520, 760},
		"format":  {520, 1080},
		"preview": {520, 960},
		"make":    {1080, 1860},
		"compile": {840, 3380},
	}
}

// Cedar is one modeled Cedar world: the idle eternal-thread population
// plus whatever benchmark activity has been started on it.
type Cedar struct {
	W   *sim.World
	Reg *paradigm.Registry
	Lib *Library
	P   CedarParams

	regions map[string]Region

	input      *paradigm.DeviceQueue // raw keyboard/mouse hardware
	events     *paradigm.Buffer      // preprocessed event queue
	shell      *paradigm.MBQueue     // command-shell serialization context
	uiThreads  []*paradigm.Sleeper
	chains     []*PumpChain        // eternal pump chains (X output, journaling, ...)
	gcWork     *paradigm.WorkQueue // finalization callbacks (§4.3)
	dispatcher *paradigm.Service   // task-rejuvenating event dispatcher (§4.5)

	// EchoLatency records keystroke-to-echo latency, the paper's prime
	// usability number.
	EchoLatency stats.LatencyRecorder

	// Dispatched counts events the dispatcher has handled — the progress
	// counter resilience experiments watch to measure recovery.
	Dispatched int64

	scrollCount int // numbers scroll events for the fork-every-Nth pattern
	stops       []func()
}

// NewCedar builds the idle Cedar world: ~35 eternal threads (sleepers,
// pump chains, pokeable UI helpers, scavengers, Notifier, dispatcher,
// command shell, GC daemon), the idle transient forker, and the input
// pipeline "all user input is filtered through" (§4.2).
func NewCedar(w *sim.World, reg *paradigm.Registry, p CedarParams) *Cedar {
	c := &Cedar{
		W: w, Reg: reg, P: p,
		Lib:     NewLibrary(w, "cedar-lib", p.LibrarySize),
		regions: p.regions(),
	}
	c.input = paradigm.NewDeviceQueue(w, "input-device")
	c.events = paradigm.NewBuffer(w, "event-queue", 0)
	c.shell = paradigm.NewMBQueue(w, reg, "command-shell", sim.PriorityNormal)

	core := c.regions["core"]

	// Timeout-driven eternal sleepers, priorities spread over 1–4 ("the
	// four standard priority values"; level 5 is never used in Cedar).
	// Per-activation work spreads over 1.5-4.5 ms — the paper's
	// execution-interval peak near 3 ms — with a few slower sleepers
	// doing 8-16 ms bursts (cache sweeps, layout passes).
	var specs []EternalSpec
	for i := 0; i < p.TimeoutSleepers; i++ {
		period := p.SleeperPeriods + vclock.Duration(i-p.TimeoutSleepers/2)*12*vclock.Millisecond
		work := vclock.Duration(1500+1000*(i%4)) * vclock.Microsecond
		if i >= p.TimeoutSleepers-3 {
			k := i - (p.TimeoutSleepers - 3)
			work = vclock.Duration(6+3*k) * vclock.Millisecond
			period = vclock.Duration(400+100*k) * vclock.Millisecond
		}
		specs = append(specs, EternalSpec{
			Name:    fmt.Sprintf("eternal-%d", i),
			Pri:     sim.Priority(1 + i%4),
			Period:  period,
			Touches: p.SleeperTouches,
			Region:  core,
			Work:    work,
		})
	}
	SpawnEternals(w, reg, c.Lib, specs)

	for i := 0; i < p.PumpChains; i++ {
		period := p.ChainPeriod + vclock.Duration(i)*20*vclock.Millisecond
		c.chains = append(c.chains, SpawnPumpChain(w, reg, c.Lib, fmt.Sprintf("chain-%d", i), sim.Priority(1+i%4), period, 3, core, 400*vclock.Microsecond))
	}

	// Pokeable UI helpers. Even-numbered helpers nudge their odd
	// neighbor when activated (caret moves wake the selection
	// highlighter, and so on), so one input event fans out into a small
	// second wave of notified waits — the "significant increases in
	// activity by eternal threads" of §3.
	uiRegion := c.regions["ui"]
	for i := 0; i < p.UIPokeables; i++ {
		i := i
		s := paradigm.StartSleeper(w, reg, fmt.Sprintf("ui-helper-%d", i), sim.PriorityNormal, 0, func(t *sim.Thread) {
			c.Lib.Touch(t, uiRegion, p.UITouches)
			t.Compute(p.UIWork)
			if i%2 == 0 && i+1 < len(c.uiThreads) {
				c.uiThreads[i+1].Poke(t)
			}
		})
		c.uiThreads = append(c.uiThreads, s)
	}

	// Periodic compute-bound scavengers produce the paper's second
	// execution-interval peak at the quantum length: they run at the
	// default priority, so equal-priority round-robin (not preemption)
	// slices their long computes into quantum-sized intervals.
	for i := 0; i < p.Scavengers; i++ {
		i := i
		paradigm.StartSleeper(w, reg, fmt.Sprintf("scavenger-%d", i), sim.PriorityNormal, p.ScavengerDelay, func(t *sim.Thread) {
			c.Lib.Touch(t, core, 4)
			// Work in quantum-sized chunks with a breath of I/O between
			// them: the execution intervals still peak at the quantum,
			// but an echo fork never queues behind the whole pass.
			chunk := 50 * vclock.Millisecond
			for left := p.ScavengerWork; left > 0; left -= chunk {
				if left < chunk {
					t.Compute(left)
					break
				}
				t.Compute(chunk)
				t.BlockIO(500 * vclock.Microsecond)
			}
		})
	}

	// GC daemon at priority 6 with a finalization work queue; callbacks
	// are forked per §4.4 ("the finalization service thread forks each
	// callback").
	c.gcWork = paradigm.NewWorkQueue(w, reg, "finalizer", sim.PriorityNormal)
	paradigm.StartSleeper(w, reg, "gc-daemon", sim.PriorityDaemon, 3*vclock.Second, func(t *sim.Thread) {
		c.Lib.Touch(t, core, 25)
		t.Compute(2 * vclock.Millisecond)
	})

	// The idle transient forker: a transient roughly every 2 s, each
	// forking a second-generation child (§3's forking-pattern analysis).
	if p.IdleForkPeriod > 0 {
		stop := paradigm.PeriodicalFork(w, reg, "idle-forker", p.IdleForkPeriod, func(t *sim.Thread) {
			paradigm.DeferTo(reg, t, "idle-transient", func(t1 *sim.Thread) {
				c.Lib.Touch(t1, core, 18)
				t1.Compute(4 * vclock.Millisecond)
				paradigm.DeferTo(reg, t1, "idle-transient-child", func(t2 *sim.Thread) {
					c.Lib.Touch(t2, core, 12)
					t2.Compute(2 * vclock.Millisecond)
				})
			})
		})
		c.stops = append(c.stops, stop)
	}

	c.startNotifier()
	c.startDispatcher()
	return c
}

// startNotifier spawns the keyboard-and-mouse watching process — "such a
// critical, high priority thread in both Cedar and GVX" (§4.1) — at
// priority 7 (Cedar's interrupt level). It preprocesses raw events and
// pumps them into the event queue, coalescing mouse motion.
func (c *Cedar) startNotifier() {
	c.Reg.Register(paradigm.KindGeneralPump)
	core := c.regions["core"]
	pri := c.P.NotifierPriority
	if pri == 0 {
		pri = sim.PriorityInterrupt
	}
	c.W.Spawn("Notifier", pri, func(t *sim.Thread) any {
		for {
			ev, ok := c.input.Get(t)
			if !ok {
				c.events.Close(t)
				return nil
			}
			batch := []inputEvent{ev.(inputEvent)}
			for {
				more, ok := c.input.TryGet(t)
				if !ok {
					break
				}
				batch = append(batch, more.(inputEvent))
			}
			c.Lib.Touch(t, core, 2)
			// Coalesce runs of mouse motion; forward the rest singly.
			out := batch[:0]
			for _, e := range batch {
				if e.kind == "mouse" && len(out) > 0 && out[len(out)-1].kind == "mouse" {
					out[len(out)-1].count += e.count
					continue
				}
				out = append(out, e)
			}
			for _, e := range out {
				c.events.Put(t, e)
			}
		}
	})
}

// startDispatcher spawns the input event dispatcher under task
// rejuvenation — the exact §4.5 example: it makes unforked callbacks
// (they are on the critical path and usually very short), so a
// rejuvenating fork keeps a new copy running when a callback errors.
func (c *Cedar) startDispatcher() {
	c.dispatcher = paradigm.StartService(c.W, c.Reg, "event-dispatcher", sim.PriorityNormal, 1000, func(t *sim.Thread) {
		for {
			ev, ok := c.events.Get(t)
			if !ok {
				return
			}
			c.dispatch(t, ev.(inputEvent))
		}
	}, nil)
}

// Dispatcher exposes the rejuvenating event dispatcher so resilience
// experiments can observe its restart count.
func (c *Cedar) Dispatcher() *paradigm.Service { return c.dispatcher }

// dispatch handles one preprocessed event in the dispatcher thread.
func (c *Cedar) dispatch(t *sim.Thread, ev inputEvent) {
	c.Dispatched++
	switch ev.kind {
	case "key":
		// Keystrokes go to the command shell, which forks an echo
		// transient per keystroke (§3: "keyboard activity causes a
		// transient thread to be forked by the command-shell thread for
		// every keystroke").
		born := ev.born
		c.shell.Enqueue(t, 200*vclock.Microsecond, func(sh *sim.Thread) {
			c.Lib.Touch(sh, c.regions["core"], 8)
			paradigm.DeferTo(c.Reg, sh, "echo", func(e *sim.Thread) {
				c.Lib.Touch(e, c.regions["text"], c.P.EchoTouches)
				e.Compute(c.P.EchoWork)
				if born != 0 {
					c.EchoLatency.Add(e.Now().Sub(born))
				}
				c.pokeUI(c.P.UIPokesPerKey, 1)
				// The echo also feeds the output pump chains (screen
				// paints, typescript journaling): more notified waits.
				for _, ch := range c.chains {
					ch.Buffer.Put(e, struct{}{})
				}
			})
		})
	case "mouse":
		// Mouse motion forks nothing (§3); the dispatcher tracks the
		// cursor inline and nudges a few UI helpers.
		c.Lib.Touch(t, c.regions["cursor"], c.P.MouseTouches)
		t.Compute(300 * vclock.Microsecond)
		c.pokeUI(c.P.MouseUIPokes, 1)
	case "scroll":
		n := c.scrollCount
		c.scrollCount++
		c.shell.Enqueue(t, 200*vclock.Microsecond, func(sh *sim.Thread) {
			c.Lib.Touch(sh, c.regions["window"], c.P.ScrollTouches)
			sh.Compute(c.P.ScrollWork)
			c.pokeUI(c.P.ScrollUIPokes, 1)
			// "Scrolling a text window 10 times causes 3 transient
			// threads to be forked, one of which is the child of one of
			// the other transients."
			if c.P.ScrollForkEvery > 0 && n%c.P.ScrollForkEvery == c.P.ScrollForkEvery-1 {
				paradigm.DeferTo(c.Reg, sh, "scroll-repaint", func(r *sim.Thread) {
					c.Lib.Touch(r, c.regions["window"], 40)
					r.Compute(3 * vclock.Millisecond)
					if n%(2*c.P.ScrollForkEvery) == c.P.ScrollForkEvery-1 {
						paradigm.DeferTo(c.Reg, r, "scroll-repaint-child", func(r2 *sim.Thread) {
							c.Lib.Touch(r2, c.regions["window"], 25)
							r2.Compute(2 * vclock.Millisecond)
						})
					}
				})
			}
		})
	}
}

// pokeUI pokes the first n pokeable UI threads, `times` pokes each.
func (c *Cedar) pokeUI(n, times int) {
	if n > len(c.uiThreads) {
		n = len(c.uiThreads)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < times; j++ {
			c.uiThreads[i].PokeExternal()
		}
	}
}

// generate schedules fire() at jittered intervals of mean interval until
// the returned stop function is called.
func (c *Cedar) generate(mean vclock.Duration, fire func()) (stop func()) {
	stopped := false
	var next func()
	schedule := func() {
		// Jitter in [0.5, 1.5) of the mean, deterministic per seed.
		j := vclock.Duration(float64(mean) * (0.5 + c.W.Rand().Float64()))
		c.W.After(j, next)
	}
	next = func() {
		if stopped {
			return
		}
		fire()
		schedule()
	}
	schedule()
	return func() { stopped = true }
}

// StartKeyboard begins keystroke input at about keysPerSec.
func (c *Cedar) StartKeyboard(keysPerSec float64) {
	mean := vclock.Duration(float64(vclock.Second) / keysPerSec)
	c.stops = append(c.stops, c.generate(mean, func() {
		c.input.Push(inputEvent{kind: "key", count: 1, born: c.W.Now()})
	}))
}

// StartMouse begins mouse motion at about eventsPerSec raw events,
// delivered in hardware bursts of 4 that the Notifier coalesces — which
// is why mouse motion raises monitor traffic far less than its raw event
// rate suggests.
func (c *Cedar) StartMouse(eventsPerSec float64) {
	const burst = 4
	mean := vclock.Duration(float64(vclock.Second) * burst / eventsPerSec)
	c.stops = append(c.stops, c.generate(mean, func() {
		for i := 0; i < burst; i++ {
			c.input.Push(inputEvent{kind: "mouse", count: 1})
		}
	}))
}

// StartScrolling begins window-scroll clicks at about scrollsPerSec.
func (c *Cedar) StartScrolling(scrollsPerSec float64) {
	mean := vclock.Duration(float64(vclock.Second) / scrollsPerSec)
	c.stops = append(c.stops, c.generate(mean, func() {
		c.input.Push(inputEvent{kind: "scroll", count: 1})
	}))
}

// Stop halts all input generators and benchmark workers.
func (c *Cedar) Stop() {
	for _, s := range c.stops {
		s()
	}
	c.stops = nil
}
