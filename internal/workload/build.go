package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vclock"
	"repro/internal/workload/spec"
)

// This file is the single construction entry point the API redesign
// demanded: every workload — the W-series presets, the S-series SLO
// cohorts, the general cohort mix, and the cluster's per-instance
// server pools with their cedar/gvx background populations — is built
// by compiling a spec.Spec through StartSpec. The hand-rolled Start*
// constructors remain as the generator layer underneath, but callers
// above this package (experiments, cluster, the CLI) describe load as
// data and come through here.

// RequestTap observes one injected request at injection time: the
// arrival instant, the cohort label, the target session index, and the
// drawn service demand. Taps run in driver context, in arrival order.
type RequestTap func(at vclock.Time, cohort string, session int, service vclock.Duration)

// SpecOptions carries the run-scoped knobs StartSpec accepts alongside
// the declarative spec.
type SpecOptions struct {
	// Record, when non-nil, accumulates every generated request into
	// the trace in arrival order.
	Record *spec.Trace
	// Replay, when non-nil, drives arrivals from the recorded trace
	// instead of the spec's arrival processes: same instants, same
	// session picks, same demands, no RNG draws. The trace must have
	// been recorded from a compatible spec (same cohort names, session
	// counts it fits inside). Record and Replay compose — re-recording
	// a replayed run must reproduce the trace byte-for-byte.
	Replay *spec.Trace
	// Names supplies the interned session-name table for the server
	// kind (the cluster shares one table across a fleet); nil builds a
	// private table.
	Names *NameTable
}

// SpecRun is a compiled, started workload. Exactly one of the instance
// fields is non-nil, matching the spec's kind.
type SpecRun struct {
	Spec    *spec.Spec
	// Horizon is the recommended Run bound: the spec's declared horizon
	// or the generator's historical derivation.
	Horizon vclock.Duration

	Echo     *EchoServer
	Pipeline *Pipeline
	Mixed    *Mixed
	SLO      *SLOLoad
	Cohorts  *CohortLoad
	Server   *Server
}

// Load returns the run's aggregate LoadStats (stamping windows), for
// the kinds that keep one; nil for the slo kind (use SLO.Finish).
func (r *SpecRun) Load() *LoadStats {
	switch {
	case r.Echo != nil:
		return r.Echo.Finish()
	case r.Pipeline != nil:
		return r.Pipeline.Finish()
	case r.Mixed != nil:
		return r.Mixed.Finish()
	case r.Cohorts != nil:
		return r.Cohorts.Finish()
	case r.Server != nil:
		return r.Server.Finish()
	}
	return nil
}

// StartSpec validates sp, builds its background preset population (if
// any), and spawns the generator for its kind into w. The world is the
// caller's: build it with the seed, hooks, policy, and SystemDaemon
// setting the run wants (sp.SystemDaemon is advisory for that last
// knob), then drive it with Run to run.Horizon.
func StartSpec(w *sim.World, sp *spec.Spec, opts SpecOptions) (*SpecRun, error) {
	if err := sp.Check(); err != nil {
		return nil, err
	}
	if sp.Background != "" && sp.Background != "w1-echo" {
		preset, err := FindPreset(sp.Background)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: background: %v", spec.ErrInvalidSpec, sp.Name, err)
		}
		if preset.Background != nil {
			preset.Background(w)
		}
	}
	replays, err := replayEntries(sp, opts.Replay)
	if err != nil {
		return nil, err
	}
	var tap RequestTap
	if opts.Record != nil {
		rec := opts.Record
		tap = rec.Add
	}
	run := &SpecRun{Spec: sp, Horizon: sp.Horizon()}
	switch sp.Kind {
	case spec.KindEcho:
		c := &sp.Cohorts[0]
		run.Echo = startEcho(w, EchoParams{
			Sessions: c.Sessions,
			Requests: c.Requests,
			Rate:     c.Arrival.Rate,
			Service:  c.ServiceMean(),
			Priority: c.SimPriority(),
			Start:    vclock.Duration(sp.StartUS),
		}, tap, c.Name, replays[c.Name])
	case spec.KindPipeline:
		p := sp.Pipeline
		run.Pipeline = startPipeline(w, PipelineParams{
			Pipelines: p.Pipelines,
			Stages:    p.Stages,
			Buffer:    p.Buffer,
			Requests:  p.Requests,
			Rate:      p.Rate,
			StageCost: vclock.Duration(p.StageCostUS),
		}, tap, replays["pipeline"])
	case spec.KindMixed:
		c := &sp.Cohorts[0]
		run.Mixed = startMixed(w, MixedParams{
			Interactive: c.Sessions,
			Batch:       sp.Batch.Workers,
			Requests:    c.Requests,
			Rate:        c.Arrival.Rate,
			Service:     c.ServiceMean(),
			BatchChunk:  vclock.Duration(sp.Batch.ChunkUS),
			Horizon:     run.Horizon,
		}, tap, c.Name, replays[c.Name])
	case spec.KindSLO:
		p := SLOParams{
			Horizon: run.Horizon,
			Start:   vclock.Duration(sp.StartUS),
		}
		for _, c := range sp.Cohorts {
			p.Cohorts = append(p.Cohorts, SLOCohort{
				Name:     c.Name,
				Sessions: c.Sessions,
				Requests: c.Requests,
				Rate:     c.Arrival.Rate,
				Service:  c.ServiceMean(),
				SLO:      vclock.Duration(c.SLOUS),
				Priority: c.SimPriority(),
			})
		}
		if b := sp.Batch; b != nil {
			p.Batch = b.Workers
			p.BatchChunk = vclock.Duration(b.ChunkUS)
			p.BatchSLO = vclock.Duration(b.SLOUS)
			bp, _ := spec.ParsePriority(b.Priority)
			p.BatchPriority = bp
		}
		run.SLO = startSLO(w, p, tap, replays)
	case spec.KindCohorts:
		run.Cohorts = startCohorts(w, sp, tap, replays)
	case spec.KindServer:
		c := &sp.Cohorts[0]
		if opts.Replay != nil {
			return nil, fmt.Errorf("%w: %s: the server kind is externally driven — replay lives in its driver", spec.ErrInvalidSpec, sp.Name)
		}
		names := opts.Names
		if names == nil {
			names = NewNameTable(c.Name, c.Sessions)
		}
		prio := c.SimPriority()
		if prio == 0 {
			prio = sim.PriorityNormal
		}
		run.Server = StartServer(w, names, c.Sessions, prio)
	}
	return run, nil
}

// replayEntries validates a replay trace against the spec and splits it
// per cohort (the pipeline kind files under "pipeline"). Arrival times
// must be strictly increasing within a cohort — every generator floors
// gaps at one microsecond, so a recorded trace always satisfies this.
func replayEntries(sp *spec.Spec, tr *spec.Trace) (map[string][]spec.Entry, error) {
	if tr == nil {
		return map[string][]spec.Entry{}, nil
	}
	if sp.Kind == spec.KindServer {
		return nil, fmt.Errorf("%w: %s: the server kind is externally driven — replay lives in its driver", spec.ErrInvalidSpec, sp.Name)
	}
	pools := map[string]int{}
	switch sp.Kind {
	case spec.KindPipeline:
		pools["pipeline"] = sp.Pipeline.Pipelines
	default:
		for _, c := range sp.Cohorts {
			pools[c.Name] = c.Sessions
		}
	}
	out := make(map[string][]spec.Entry, len(pools))
	last := map[string]int64{}
	for i, e := range tr.Entries {
		n, ok := pools[e.Cohort]
		if !ok {
			return nil, fmt.Errorf("%w: %s: trace entry %d names cohort %q the spec does not declare", spec.ErrInvalidSpec, sp.Name, i, e.Cohort)
		}
		if e.Session >= n {
			return nil, fmt.Errorf("%w: %s: trace entry %d targets session %d of a %d-session pool %q", spec.ErrInvalidSpec, sp.Name, i, e.Session, n, e.Cohort)
		}
		if prev, seen := last[e.Cohort]; seen && e.AtUS <= prev {
			return nil, fmt.Errorf("%w: %s: trace entry %d: cohort %q arrivals must be strictly increasing", spec.ErrInvalidSpec, sp.Name, i, e.Cohort)
		}
		last[e.Cohort] = e.AtUS
		out[e.Cohort] = append(out[e.Cohort], e)
	}
	for name := range pools {
		if len(out[name]) == 0 {
			return nil, fmt.Errorf("%w: %s: replay trace has no entries for cohort %q", spec.ErrInvalidSpec, sp.Name, name)
		}
	}
	return out, nil
}
