package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload/spec"
)

// This file holds the S-series SLO workload: the open-loop echo machinery
// of W1 generalized to named cohorts, each carrying a per-request latency
// target (the SLO) and stamping the scheduler-visible metadata the policy
// lab consults — Thread.SetDeadline with the oldest pending request's
// deadline (EDF), SetServiceEstimate with the queued service demand (SJF),
// and SetSLOClass with the cohort name (the hybrid's interactive/batch
// split). An optional always-ready batch pool rides underneath, its chunk
// latencies recorded under the "batch" class, so one run yields per-class
// percentiles and SLO attainment for every policy under test.

// SLOCohort describes one class of open-loop request traffic.
type SLOCohort struct {
	// Name is the SLO class label, stamped on the cohort's session
	// threads and used as the per-class key in SLOStats.
	Name string
	// Sessions is the number of server session threads in the cohort.
	Sessions int
	// Requests is the total requests injected into the cohort.
	Requests int64
	// Rate is the cohort's Poisson arrival rate per virtual second,
	// fanned uniformly across its sessions.
	Rate float64
	// Service is the CPU charged per request; it is also the unit of the
	// service estimate stamped on the session (pending x Service).
	Service vclock.Duration
	// SLO is the per-request latency target: a request arriving at time a
	// must complete by a+SLO to count as on time. It is also the deadline
	// offset stamped on the session for deadline-aware policies.
	SLO vclock.Duration
	// Priority is the cohort's thread priority.
	Priority sim.Priority
}

// SLOParams configures the S-series mixed-cohort workload.
type SLOParams struct {
	// Cohorts are the request classes; at least one is required.
	Cohorts []SLOCohort
	// Batch is the number of always-ready background compute workers
	// (0 for none). Their chunk latencies are recorded under "batch".
	Batch int
	// BatchChunk is one batch compute grain.
	BatchChunk vclock.Duration
	// BatchSLO is the per-chunk latency target (start to finish of one
	// grain, preemption included).
	BatchSLO vclock.Duration
	// BatchPriority is the batch workers' priority.
	BatchPriority sim.Priority
	// Horizon bounds the run; batch workers never exit on their own.
	Horizon vclock.Duration
	// Start delays the first arrival; 0 selects a bound derived from the
	// population size, as in W1.
	Start vclock.Duration
}

// SLOStats summarizes one SLO-workload run, keyed by class name.
type SLOStats struct {
	// Threads is the total worker population (sessions plus batch).
	Threads int
	// Offered, Completed, and OnTime count requests (or batch chunks)
	// injected, served, and served within the class SLO.
	Offered   map[string]int64
	Completed map[string]int64
	OnTime    map[string]int64
	// Latency holds per-class end-to-end latency (arrival to completion,
	// queueing and preemption included).
	Latency stats.ClassLatency
}

// Classes lists every class that offered work, sorted — the union of the
// cohort names and "batch", including classes that completed nothing.
func (s *SLOStats) Classes() []string {
	names := make([]string, 0, len(s.Offered))
	for name := range s.Offered {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Attainment returns the fraction of a class's offered work that
// completed within its SLO. Work offered but never completed counts
// against the class; a class that offered nothing is trivially attained.
func (s *SLOStats) Attainment(class string) float64 {
	off := s.Offered[class]
	if off == 0 {
		return 1
	}
	return float64(s.OnTime[class]) / float64(off)
}

// sloSession is one session thread plus its request queue, interrupt
// style like W1's echoSession.
type sloSession struct {
	th   *sim.Thread
	q    []vclock.Time
	head int
}

// sloCohortState is one cohort's arrival process.
type sloCohortState struct {
	p        SLOCohort
	rng      *rand.Rand
	sessions []*sloSession
	injected int64
	replay   []spec.Entry
}

// SLOLoad is the S-series workload instance.
type SLOLoad struct {
	w       *sim.World
	p       SLOParams
	Stats   SLOStats
	cohorts []*sloCohortState
	closed  bool
	stopped bool
	tap     RequestTap
}

// StartSLO spawns the cohort sessions and batch pool and schedules each
// cohort's arrival process. Drive the world with Run to params.Horizon,
// then read Stats (Finish is a convenience returning it).
func StartSLO(w *sim.World, p SLOParams) *SLOLoad {
	return startSLO(w, p, nil, nil)
}

// startSLO is the shared constructor behind StartSLO and the spec path.
// replays maps cohort name to that cohort's recorded entries; cohorts
// absent from the map generate fresh arrivals (the two never mix in
// practice — StartSpec replays all cohorts or none).
func startSLO(w *sim.World, p SLOParams, tap RequestTap, replays map[string][]spec.Entry) *SLOLoad {
	if replays != nil {
		for i := range p.Cohorts {
			if ents := replays[p.Cohorts[i].Name]; ents != nil {
				p.Cohorts[i].Requests = int64(len(ents))
			}
		}
	}
	if len(p.Cohorts) == 0 || p.Horizon <= 0 {
		panic(fmt.Sprintf("workload: bad SLOParams %+v", p))
	}
	if p.Batch > 0 && p.BatchChunk <= 0 {
		p.BatchChunk = 5 * vclock.Millisecond
	}
	if !p.BatchPriority.Valid() {
		p.BatchPriority = sim.PriorityBackground
	}
	l := &SLOLoad{w: w, p: p, tap: tap}
	l.Stats.Offered = map[string]int64{}
	l.Stats.Completed = map[string]int64{}
	l.Stats.OnTime = map[string]int64{}
	total := 0
	for _, c := range p.Cohorts {
		if c.Sessions < 1 || c.Requests < 1 || c.Rate <= 0 || c.Service <= 0 || c.SLO <= 0 {
			panic(fmt.Sprintf("workload: bad SLOCohort %+v", c))
		}
		if !c.Priority.Valid() {
			c.Priority = sim.PriorityNormal
		}
		st := &sloCohortState{p: c, rng: w.DeriveRand("workload.slo." + c.Name)}
		if replays != nil {
			st.replay = replays[c.Name]
		}
		for i := 0; i < c.Sessions; i++ {
			s := &sloSession{}
			s.th = w.Spawn(fmt.Sprintf("slo-%s-%d", c.Name, i), c.Priority, l.sessionBody(st, s))
			s.th.SetSLOClass(c.Name)
			st.sessions = append(st.sessions, s)
		}
		l.cohorts = append(l.cohorts, st)
		total += c.Sessions
	}
	for i := 0; i < p.Batch; i++ {
		th := w.Spawn(fmt.Sprintf("slo-batch-%d", i), p.BatchPriority, l.batchBody())
		th.SetSLOClass("batch")
		// A batch grain is the worker's perpetual remaining demand; the
		// estimate lets SJF rank the pool against finite sessions.
		th.SetServiceEstimate(p.BatchChunk)
	}
	l.Stats.Threads = total + p.Batch
	start := p.Start
	if start <= 0 {
		perPark := w.Config().SwitchCost + 10*vclock.Microsecond
		start = vclock.Duration(l.Stats.Threads)*perPark + 100*vclock.Millisecond
	}
	for _, st := range l.cohorts {
		st := st
		first := start
		if st.replay != nil {
			// The recorded first arrival is exactly where the generated
			// chain began, so replayed runs schedule the same instants.
			first = vclock.Duration(st.replay[0].AtUS)
		}
		w.After(first, func() { l.arrive(st) })
	}
	w.At(vclock.Time(0).Add(p.Horizon), func() { l.stopped = true })
	return l
}

// stamp refreshes the scheduler-visible metadata from the session's
// queue: the head request's deadline and the pending service demand.
// Runs in both driver context (arrivals) and thread context (completion).
func (st *sloCohortState) stamp(s *sloSession) {
	pending := len(s.q) - s.head
	if pending > 0 {
		s.th.SetDeadline(s.q[s.head].Add(st.p.SLO))
	} else {
		s.th.SetDeadline(0)
	}
	s.th.SetServiceEstimate(vclock.Duration(pending) * st.p.Service)
}

// arrive injects one request into the cohort (driver context) and
// schedules the next; after the last, idle sessions are woken so the
// whole cohort can observe the close and exit once drained.
func (l *SLOLoad) arrive(st *sloCohortState) {
	if st.injected >= st.p.Requests {
		return
	}
	idx := 0
	if st.replay != nil {
		idx = st.replay[st.injected].Session
	} else {
		idx = st.rng.Intn(len(st.sessions))
	}
	s := st.sessions[idx]
	now := l.w.Now()
	s.q = append(s.q, now)
	st.stamp(s)
	l.Stats.Offered[st.p.Name]++
	st.injected++
	if l.tap != nil {
		l.tap(now, st.p.Name, idx, st.p.Service)
	}
	l.w.WakeIfBlocked(s.th, nil)
	if st.injected < st.p.Requests {
		var gap vclock.Duration
		if st.replay != nil {
			gap = vclock.Time(0).Add(vclock.Duration(st.replay[st.injected].AtUS)).Sub(now)
		} else {
			gap = expDelay(st.rng, st.p.Rate)
		}
		l.w.After(gap, func() { l.arrive(st) })
	} else if l.allInjected() {
		l.close()
	}
}

func (l *SLOLoad) allInjected() bool {
	for _, st := range l.cohorts {
		if st.injected < st.p.Requests {
			return false
		}
	}
	return true
}

func (l *SLOLoad) close() {
	l.closed = true
	for _, st := range l.cohorts {
		for _, s := range st.sessions {
			l.w.WakeIfBlocked(s.th, nil)
		}
	}
}

func (l *SLOLoad) sessionBody(st *sloCohortState, s *sloSession) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			if s.head == len(s.q) {
				s.q, s.head = s.q[:0], 0
				st.stamp(s)
				if l.closed {
					return nil
				}
				t.Block(sim.BlockCV)
				continue
			}
			arrival := s.q[s.head]
			s.head++
			t.Compute(st.p.Service)
			lat := t.Now().Sub(arrival)
			l.Stats.Completed[st.p.Name]++
			l.Stats.Latency.Add(st.p.Name, lat)
			if lat <= st.p.SLO {
				l.Stats.OnTime[st.p.Name]++
			}
			st.stamp(s)
		}
	}
}

// batchBody is one always-ready compute worker. A chunk's latency spans
// its start to its finish, so preemption while mid-grain — exactly what a
// promptness-oriented policy inflicts on the pool — shows up in the
// percentiles rather than vanishing into lost throughput.
func (l *SLOLoad) batchBody() sim.Proc {
	return func(t *sim.Thread) any {
		for !l.stopped {
			start := t.Now()
			l.Stats.Offered["batch"]++
			t.Compute(l.p.BatchChunk)
			lat := t.Now().Sub(start)
			l.Stats.Completed["batch"]++
			l.Stats.Latency.Add("batch", lat)
			if lat <= l.p.BatchSLO {
				l.Stats.OnTime["batch"]++
			}
		}
		return nil
	}
}

// Finish returns the stats after the driving Run returns.
func (l *SLOLoad) Finish() *SLOStats {
	return &l.Stats
}
