package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// This file holds the externally-driven request server the cluster layer
// routes into. W1's EchoServer owns its whole arrival process — it draws
// inter-arrival gaps and picks sessions itself, which is the right shape
// for a single-world experiment but the wrong one for a fleet: there the
// arrival process, the routing decision, and the admission decision all
// live *outside* any one world, in the cluster. Server is the passive
// half of that split: a session-thread pool that serves whatever requests
// an outside driver injects, each with an explicit service demand.

// NameTable interns per-session thread names so a fleet of N instances
// shares one table of S strings instead of allocating N×S copies —
// session i is "echo-i" in every instance, and the table is immutable
// after construction, so concurrent instance builds may share it freely.
type NameTable struct {
	names []string
}

// NewNameTable builds the table for n sessions named prefix-0..prefix-n-1.
func NewNameTable(prefix string, n int) *NameTable {
	t := &NameTable{names: make([]string, n)}
	for i := range t.names {
		t.names[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return t
}

// Name returns the interned name of session i.
func (t *NameTable) Name(i int) string { return t.names[i] }

// Len returns the number of interned names.
func (t *NameTable) Len() int { return len(t.names) }

// srvReq is one injected request: when it arrived at the instance and
// how much CPU it demands. The demand travels with the request (rather
// than being a server constant) so the driver can impose heavy-tailed
// service distributions without the server knowing. Tracked requests
// (InjectTracked) additionally carry the driver's token and the server
// epoch they were injected in, so a crash between injection and
// completion is detectable at completion time.
type srvReq struct {
	born    vclock.Time
	service vclock.Duration
	token   uint64
	epoch   int
	tracked bool
}

// Completion is one tracked request's outcome, reported back to the
// driving cluster: the driver's token, the virtual completion time, and
// whether the response was actually delivered (OK is false when the
// instance crashed after admitting the request — the work may even have
// been done, but the answer died with the machine).
type Completion struct {
	Token uint64
	At    vclock.Time
	OK    bool
}

// srvSession is one session thread plus its driver-owned request queue,
// the same interrupt-handler-posts-to-server-thread shape as W1.
type srvSession struct {
	th   *sim.Thread
	q    []srvReq
	head int
}

// Server is an externally-driven session pool. All methods must be
// called from driver context (between Run steps, or inside World.At /
// World.After callbacks) — never from another goroutine.
type Server struct {
	w        *sim.World
	Stats    LoadStats
	sessions []*srvSession
	pending  int
	closed   bool
	firstAt  vclock.Time
	lastDone vclock.Time

	// Fault-model state (all driven from driver context; see Crash,
	// Restore, StallUntil, CancelQueued). epoch counts crashes so a
	// request injected before a crash fails even if its compute finishes
	// after a restart.
	down       bool
	epoch      int
	stallUntil vclock.Time
	cancelSet  map[uint64]bool
	events     []Completion
	dropped    int64
	cancelled  int64
	failed     int64
}

// StartServer spawns sessions session threads at prio, naming them from
// names (which must hold at least sessions entries). The pool serves
// injected requests until Close.
func StartServer(w *sim.World, names *NameTable, sessions int, prio sim.Priority) *Server {
	if sessions < 1 || names.Len() < sessions {
		panic(fmt.Sprintf("workload: bad Server population %d (names %d)", sessions, names.Len()))
	}
	if !prio.Valid() {
		prio = sim.PriorityNormal
	}
	s := &Server{w: w}
	s.Stats.Threads = sessions
	for i := 0; i < sessions; i++ {
		sess := &srvSession{}
		sess.th = w.Spawn(names.Name(i), prio, s.sessionBody(sess))
		s.sessions = append(s.sessions, sess)
	}
	return s
}

// Sessions returns the pool size.
func (s *Server) Sessions() int { return len(s.sessions) }

// Pending returns the number of injected-but-not-completed requests —
// the instantaneous queue depth a least-loaded router compares.
func (s *Server) Pending() int { return s.pending }

// Inject posts one request to session i, stamped with the world's
// current time. The driver is responsible for session choice (that is
// the routing policy) and for the service demand (that is the workload
// model).
func (s *Server) Inject(i int, service vclock.Duration) {
	if s.closed {
		panic("workload: Inject after Close")
	}
	now := s.w.Now()
	if s.Stats.Offered == 0 {
		s.firstAt = now
	}
	sess := s.sessions[i%len(s.sessions)]
	sess.q = append(sess.q, srvReq{born: now, service: service})
	s.Stats.Offered++
	s.pending++
	s.w.WakeIfBlocked(sess.th, nil)
}

// Close marks the offered load complete and wakes every idle session so
// the pool can drain and exit, letting the world quiesce.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, sess := range s.sessions {
		s.w.WakeIfBlocked(sess.th, nil)
	}
}

func (s *Server) sessionBody(sess *srvSession) sim.Proc {
	return func(t *sim.Thread) any {
		for {
			if sess.head == len(sess.q) {
				sess.q, sess.head = sess.q[:0], 0
				if s.closed {
					return nil
				}
				t.Block(sim.BlockCV)
				continue
			}
			// A stalled instance admits requests but serves none until the
			// window passes — §6.2's "the system seemed to stop", scaled
			// from one thread to one machine.
			if s.stallUntil.After(t.Now()) {
				t.BlockIO(s.stallUntil.Sub(t.Now()))
				continue
			}
			req := sess.q[sess.head]
			sess.head++
			if req.tracked && s.cancelSet[req.token] {
				// Cancelled while still queued (a hedge loser): consumes no
				// service time and reports no completion.
				delete(s.cancelSet, req.token)
				s.pending--
				s.cancelled++
				continue
			}
			t.Compute(req.service)
			s.pending--
			if req.tracked {
				delete(s.cancelSet, req.token)
				ok := !s.down && req.epoch == s.epoch
				s.events = append(s.events, Completion{Token: req.token, At: t.Now(), OK: ok})
				if !ok {
					// The machine died between admission and response: the
					// work happened, the answer was never delivered.
					s.failed++
					continue
				}
			}
			s.Stats.Completed++
			s.Stats.Latency.Add(t.Now().Sub(req.born))
			s.lastDone = t.Now()
		}
	}
}

// InjectTracked posts one request like Inject, stamped with the driver's
// token; its outcome is later reported through Drain as a Completion.
// When the instance is down the request is refused on the spot — a
// failed Completion at the current time — and consumes no service.
func (s *Server) InjectTracked(i int, service vclock.Duration, token uint64) {
	now := s.w.Now()
	if s.down {
		s.failed++
		s.events = append(s.events, Completion{Token: token, At: now, OK: false})
		return
	}
	if s.closed {
		panic("workload: InjectTracked after Close")
	}
	if s.Stats.Offered == 0 {
		s.firstAt = now
	}
	sess := s.sessions[i%len(s.sessions)]
	sess.q = append(sess.q, srvReq{born: now, service: service, token: token, epoch: s.epoch, tracked: true})
	s.Stats.Offered++
	s.pending++
	s.w.WakeIfBlocked(sess.th, nil)
}

// Drain returns the tracked completions recorded since the previous
// Drain, in completion order. Call from the cluster driver after an
// advance barrier — never while the world may still be stepping.
func (s *Server) Drain() []Completion {
	ev := s.events
	s.events = nil
	return ev
}

// Crash takes the instance down at the current virtual time: queued
// requests are dropped cold (failed Completions for tracked ones),
// in-flight responses will not be delivered, and InjectTracked refuses
// new work until Restore. Session threads survive — the cold restart
// reuses them with empty queues.
func (s *Server) Crash() {
	s.down = true
	s.epoch++
	now := s.w.Now()
	for _, sess := range s.sessions {
		for _, r := range sess.q[sess.head:] {
			s.pending--
			s.dropped++
			if r.tracked {
				s.events = append(s.events, Completion{Token: r.token, At: now, OK: false})
			}
		}
		sess.q = sess.q[:0]
		sess.head = 0
	}
}

// Restore brings a crashed instance back with cold session state (the
// queues were emptied by Crash; nothing carries over).
func (s *Server) Restore() { s.down = false }

// Down reports whether the instance is currently crashed.
func (s *Server) Down() bool { return s.down }

// StallUntil freezes service until the given virtual time: sessions keep
// admitting requests but complete none before it. Later deadlines win.
func (s *Server) StallUntil(until vclock.Time) {
	if until.After(s.stallUntil) {
		s.stallUntil = until
	}
}

// CancelQueued marks a tracked request for cancellation. If it is still
// queued when a session reaches it, it is skipped without consuming
// service and without a Completion; if it already started computing the
// cancel is too late and the request completes normally.
func (s *Server) CancelQueued(token uint64) {
	if s.cancelSet == nil {
		s.cancelSet = make(map[uint64]bool)
	}
	s.cancelSet[token] = true
}

// Dropped returns the number of requests lost cold to Crash.
func (s *Server) Dropped() int64 { return s.dropped }

// Cancelled returns the number of tracked requests cancelled while
// still queued (hedge losers that never consumed service).
func (s *Server) Cancelled() int64 { return s.cancelled }

// Undelivered returns the number of tracked requests refused by a down
// instance or whose response was lost to a crash mid-service.
func (s *Server) Undelivered() int64 { return s.failed }

// First returns the arrival time of the first injected request (the
// zero Time if none were injected).
func (s *Server) First() vclock.Time { return s.firstAt }

// LastDone returns the completion time of the last served request (the
// zero Time if none completed). Together with First this lets a fleet
// compute its aggregate measurement window — earliest first arrival to
// latest last completion across instances — which per-instance
// LoadStats.Window alone cannot express.
func (s *Server) LastDone() vclock.Time { return s.lastDone }

// Finish stamps the measurement window after the driving Run returns.
func (s *Server) Finish() *LoadStats {
	if s.Stats.Completed > 0 {
		s.Stats.Window = s.lastDone.Sub(s.firstAt)
	}
	return &s.Stats
}
