package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every example main, checking it
// exits cleanly and prints something sensible. The examples are the
// repository's doorway; they must never rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	wantOutput := map[string]string{
		"quickstart":    "simulation ended: quiescent",
		"editor":        "latency",
		"xbatch":        "YieldButNotToMe vs plain YIELD",
		"rejuvenation":  "still alive: true",
		"guardedbutton": "fired 1 time(s)",
		"inversion":     "priority inheritance",
		"mailer":        "keepalive checks",
		"timeline":      "yield-but-not-to-me",
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			ctxCmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			ctxCmd.Env = os.Environ()
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = ctxCmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = ctxCmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if runErr != nil {
				t.Fatalf("example %s failed: %v\n%s", name, runErr, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
			if want := wantOutput[name]; want != "" && !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
	if found != len(wantOutput) {
		t.Errorf("found %d examples, expectations for %d — keep the map in sync", found, len(wantOutput))
	}
}
