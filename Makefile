# One-command gates for this repository. `make check` is the bar every
# PR must clear: vet, build, the full test suite under the race
# detector — the race run is what proves the parallel experiment
# harness (experiments.RunAll) shares no hidden state — plus a short
# fuzz pass over the plan/trace parsers and a bounded schedule-
# exploration sweep (every healthy scenario clean, every known-bad
# fixture caught).

GO ?= go
FUZZTIME ?= 10s
EXPLORE_BUDGET ?= 200

# Packages with a minimum-coverage bar (see `make cover`).
COVER_PKGS = ./internal/sim ./internal/monitor ./internal/fault ./internal/cluster ./internal/eventq ./internal/sched ./internal/workload/spec ./internal/workload/capacity
COVER_FLOOR = 75

.PHONY: check vet build test race bench fuzz-short explore cover knee

check: vet build race fuzz-short explore

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks plus the fixed-seed accounting sweep: every experiment —
# the T/F/R artifact set, the W-series load workloads, the C-series
# cluster fleets, and the D-series resilience study — runs quick with
# the per-thread profiler attached, and the combined metrics +
# scheduler-accounting summary lands in
# BENCH_PR10.json. The sweep fails if any run's accounting residue is
# nonzero, so `make bench` also certifies the exactness invariant on the
# full experiment population, and -benchbaseline gates the aggregate
# events/sec against the committed BENCH_PR9.json artifact — a sweep
# that does different work (event-count drift) or runs slower than the
# previous PR's artifact fails. The S-series policy lab and the K-series
# capacity lab are deliberately outside the sweep: the S population must
# stay comparable to the baseline (the policy API's zero-cost proof),
# and a K knee search's event count is a step function of the measured
# knee, useless as a regression baseline. The hot-path allocs/op pin
# runs first: the event loop, ready queues, discard-sink tracing,
# timing-wheel schedule/cancel and batch admission must stay
# allocation-free in steady state.
bench:
	$(GO) test -run TestHotPathAllocs ./internal/sim
	$(GO) test -bench=. -benchmem -run='^$$'
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/sim ./internal/eventq
	$(GO) run ./cmd/threadstudy -bench BENCH_PR10.json -benchbaseline BENCH_PR9.json

# Short coverage-guided fuzzing of the attacker-facing parsers — JSON
# fault plans, JSON workload specs, and the binary trace codec (decode
# robustness + encode/decode round trip) — plus the timing-wheel/
# reference differential: random op streams must keep the hierarchical
# wheel byte-for-byte equivalent to the naive sorted-list event queue.
fuzz-short:
	$(GO) test -run='^$$' -fuzz FuzzPlanJSON -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run='^$$' -fuzz FuzzSpecJSON -fuzztime $(FUZZTIME) ./internal/workload/spec
	$(GO) test -run='^$$' -fuzz FuzzRead'$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz FuzzEncodeDecode -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz FuzzWheelDifferential -fuzztime $(FUZZTIME) ./internal/eventq

# Bounded systematic schedule exploration over all registered scenarios.
explore:
	$(GO) run ./cmd/schedcheck -budget $(EXPLORE_BUDGET)

# The K-series capacity sweep: ramp each configuration's offered load
# until its overload criterion trips, bisect to the knee, and land the
# schema-versioned knee records (with the full run summaries) in
# CAPACITY_PR10.json. Quick-scale: the full-scale knees come from
# `go run ./cmd/threadstudy -series k -json CAPACITY_PR10.json`.
knee:
	$(GO) run ./cmd/threadstudy -series k -quick -json CAPACITY_PR10.json

# Per-package coverage with a floor: the simulator kernel, the monitor
# implementation, and the fault injector must each stay above
# $(COVER_FLOOR)% statement coverage.
cover:
	@for pkg in $(COVER_PKGS); do \
		$(GO) test -covermode=atomic -coverprofile=/tmp/cover.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=/tmp/cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" \
			'BEGIN { if (p+0 < f+0) { print "coverage below floor"; exit 1 } }' || exit 1; \
	done
