# One-command gates for this repository. `make check` is the bar every
# PR must clear: vet, build, and the full test suite under the race
# detector — the race run is what proves the parallel experiment
# harness (experiments.RunAll) shares no hidden state.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$'
